"""The simulated Google+ service.

This is the substrate the paper measures: account signup (invitation-only
field trial, then open signup), circle management with the out-circle cap
and whitelist, follower tracking, per-field privacy enforcement, and the
public profile pages the crawler scrapes. A lightweight content layer
(posts with circle-scoped visibility, reshares and +1s) rounds out the
platform description of Section 2.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import repeat
from typing import Iterator

import numpy as np

from .gcpause import gc_paused
from .circles import (
    CIRCLE_DISPLAY_LIMIT,
    CircleStore,
    DEFAULT_CIRCLE,
    OUT_CIRCLE_LIMIT,
)
from .errors import (
    AlreadyRegisteredError,
    CircleLimitError,
    SignupClosedError,
    UnknownUserError,
)
from .http import STATUS_NOT_FOUND, STATUS_OK
from .models import UserProfile
from .pages import ProfilePage, truncate_list
from .privacy import FieldPrivacy, Visibility


@dataclass(frozen=True)
class MutationEvent:
    """One state change a subscriber (e.g. a page cache) must react to.

    Kinds: ``circle_add`` / ``circle_remove`` (``user_id`` acts on
    ``target_id``), ``bulk_edges`` (a batch ingest; ids unenumerated),
    ``profile`` (a field or lists_public change on ``user_id``),
    ``post`` (``user_id`` published) and ``plus_one`` (``target_id`` is
    the post id).
    """

    kind: str
    user_id: int
    target_id: int | None = None


@dataclass(frozen=True)
class Notification:
    """An in-app notification.

    Section 2.1: "A user can identify all the others who included the
    user in their circles (i.e., followers), because the user receives a
    notification when someone adds him to a circle."
    """

    kind: str
    actor_id: int
    subject_id: int | None = None


@dataclass
class Post:
    """A stream item: content shared to a set of the author's circles.

    ``to_circles`` of ``None`` means shared publicly.
    """

    post_id: int
    author_id: int
    content: str
    to_circles: frozenset[str] | None = None
    plus_ones: set[int] = field(default_factory=set)
    reshared_from: int | None = None


@dataclass
class _Account:
    """Internal per-user record: profile, circles, and follower index."""

    profile: UserProfile
    circles: CircleStore
    followers: dict[int, None] = field(default_factory=dict)
    notifications: list[Notification] = field(default_factory=list)


class GooglePlusService:
    """In-process simulation of the Google+ social networking service."""

    #: Which backing store implements the service state; the columnar
    #: subclass overrides this (``WorldConfig.store`` selects between
    #: them — see docs/storage.md).
    backend = "dict"

    def __init__(
        self,
        open_signup: bool = False,
        circle_display_limit: int = CIRCLE_DISPLAY_LIMIT,
    ):
        if circle_display_limit < 1:
            raise ValueError("circle display limit must be positive")
        self._accounts: dict[int, _Account] = {}
        self._posts: dict[int, Post] = {}
        self._next_post_id = 1
        self.open_signup = open_signup
        self.circle_display_limit = circle_display_limit
        #: Mutation subscribers; empty for every non-serving workload, so
        #: the guard in :meth:`_notify` keeps the hot paths free.
        self._mutation_listeners: list = []

    # -- mutation events -----------------------------------------------------

    def add_mutation_listener(self, listener) -> None:
        """Subscribe a callable to :class:`MutationEvent` notifications."""
        self._mutation_listeners.append(listener)

    def _notify(self, kind: str, user_id: int, target_id: int | None = None) -> None:
        if self._mutation_listeners:
            event = MutationEvent(kind=kind, user_id=user_id, target_id=target_id)
            for listener in self._mutation_listeners:
                listener(event)

    # -- account lifecycle -------------------------------------------------

    def register(
        self,
        profile: UserProfile,
        invited_by: int | None = None,
        exempt_from_circle_limit: bool = False,
    ) -> None:
        """Create an account.

        During the field trial (``open_signup`` False) a valid inviter who
        is already a member is required, mirroring the invitation-viral
        growth phase described in Section 2.1.
        """
        if profile.user_id in self._accounts:
            raise AlreadyRegisteredError(profile.user_id)
        if not self.open_signup:
            if invited_by is None:
                raise SignupClosedError(
                    "signups are invitation-only during the field trial"
                )
            if invited_by not in self._accounts:
                raise UnknownUserError(invited_by)
        store = CircleStore(profile.user_id, exempt_from_limit=exempt_from_circle_limit)
        store.create_circle(DEFAULT_CIRCLE)
        self._accounts[profile.user_id] = _Account(profile=profile, circles=store)

    def register_bulk(
        self,
        profiles,
        exempt_ids=(),
        invited_by=None,
    ) -> int:
        """Create many accounts in one call; returns how many were created.

        State-identical to calling :meth:`register` once per profile in
        order: same accounts, same iteration order, same errors at the
        same profile. ``exempt_ids`` is the set of user ids whitelisted
        past the out-circle cap (ids not in ``profiles`` are ignored);
        ``invited_by`` aligns with ``profiles`` and is required, as in
        the scalar path, while signup is invitation-only. The batch form
        hoists the signup-phase branching out of the per-account work
        and builds each account's stores directly.
        """
        accounts = self._accounts
        exempt = frozenset(int(u) for u in exempt_ids)
        open_signup = self.open_signup
        inviters = repeat(None) if invited_by is None else invited_by
        created = 0
        with gc_paused():
            for profile, inviter in zip(profiles, inviters):
                user_id = profile.user_id
                if user_id in accounts:
                    raise AlreadyRegisteredError(user_id)
                if not open_signup:
                    if inviter is None:
                        raise SignupClosedError(
                            "signups are invitation-only during the field trial"
                        )
                    if inviter not in accounts:
                        raise UnknownUserError(inviter)
                accounts[user_id] = _Account(
                    profile=profile,
                    circles=CircleStore(
                        user_id,
                        exempt_from_limit=user_id in exempt,
                        members_by_circle={DEFAULT_CIRCLE: {}},
                    ),
                )
                created += 1
        return created

    def enable_open_signup(self) -> None:
        """End the field trial: anyone may sign up (September 20th, 2011)."""
        self.open_signup = True

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._accounts

    def __len__(self) -> int:
        return len(self._accounts)

    def user_ids(self) -> Iterator[int]:
        return iter(self._accounts)

    def profile(self, user_id: int) -> UserProfile:
        return self._account(user_id).profile

    def _account(self, user_id: int) -> _Account:
        try:
            return self._accounts[user_id]
        except KeyError:
            raise UnknownUserError(user_id) from None

    # -- circles / social links --------------------------------------------

    def add_to_circle(
        self, user_id: int, target_id: int, circle: str = DEFAULT_CIRCLE
    ) -> bool:
        """``user_id`` adds ``target_id`` to a circle (no confirmation needed).

        Returns True when a new directed social link was created.
        """
        account = self._account(user_id)
        target = self._account(target_id)
        is_new_link = account.circles.add(target_id, circle)
        if is_new_link:
            target.followers[user_id] = None
            # Section 2.1: the added user is notified (circle name stays
            # private — only the fact of the add is revealed).
            target.notifications.append(
                Notification(kind="added_to_circle", actor_id=user_id)
            )
        # Even a non-link add (an existing contact joining another circle)
        # changes the named-circle membership CUSTOM privacy reads.
        self._notify("circle_add", user_id, target_id)
        return is_new_link

    def add_edges_bulk(
        self,
        sources,
        targets,
        circles=None,
        *,
        circle_index=None,
    ) -> int:
        """Plant many directed links in one call; returns new-link count.

        On success the service state is identical to calling
        :meth:`add_to_circle` once per ``(sources[i], targets[i],
        circles[i])`` in order — including every insertion order the
        crawl depends on: each owner's circle membership and flattened
        contact list, each target's follower list, and the notification
        feeds. Instead of 2N dict lookups per edge, the batch is sorted
        once per side and each account's dicts are built with
        ``dict.fromkeys`` over contiguous, originally-ordered slices.

        ``circles`` may be a sequence of circle names (one per edge) or
        ``None`` for :data:`DEFAULT_CIRCLE` throughout; alternatively
        ``circle_index=(labels, index_array)`` names each edge's circle
        as ``labels[index_array[i]]`` without materializing a per-edge
        string list. Validation is batched: unknown users and self-edges
        fail up front with nothing mutated, and the out-circle cap is
        checked per owner before that owner's circles are touched (the
        scalar path raises at the exact offending edge instead; a batch
        that succeeds is unaffected).
        """
        # The ingest allocates millions of dict entries in one burst;
        # pausing cyclic GC for the duration avoids repeated whole-heap
        # collections triggered by allocation thresholds.
        with gc_paused():
            created = self._add_edges_bulk(sources, targets, circles, circle_index)
        if created:
            self._notify("bulk_edges", -1)
        return created

    def _add_edges_bulk(self, sources, targets, circles, circle_index) -> int:
        src = np.asarray(sources, dtype=np.int64)
        dst = np.asarray(targets, dtype=np.int64)
        if src.ndim != 1 or dst.shape != src.shape:
            raise ValueError("sources and targets must have equal length")
        m = len(src)
        if circles is not None and circle_index is not None:
            raise ValueError("pass either circles or circle_index, not both")
        if circles is not None and len(circles) != m:
            raise ValueError("circles must have one entry per edge")
        if m == 0:
            return 0
        accounts = self._accounts
        ids = np.concatenate((src, dst))
        top = max(accounts) if accounts else -1
        lo, hi = int(ids.min()), int(ids.max())
        if lo < 0 or hi > top:
            raise UnknownUserError(lo if lo < 0 else hi)
        known = np.zeros(top + 1, dtype=bool)
        known[np.fromiter(accounts.keys(), dtype=np.int64, count=len(accounts))] = True
        missing = np.flatnonzero(~known[ids])
        if len(missing):
            raise UnknownUserError(int(ids[missing[0]]))
        if bool((src == dst).any()):
            raise ValueError("users cannot add themselves to their own circles")
        if circle_index is not None:
            label_seq, index_arr = circle_index
            labels = [str(name) for name in label_seq]
            cidx = np.asarray(index_arr, dtype=np.int64)
            if cidx.shape != src.shape:
                raise ValueError("circle_index array must have one entry per edge")
            if len(cidx) and (
                int(cidx.min()) < 0 or int(cidx.max()) >= len(labels)
            ):
                raise ValueError("circle_index entries out of label range")
        elif circles is None:
            labels = [DEFAULT_CIRCLE]
            cidx = np.zeros(m, dtype=np.int64)
        else:
            labels = list(dict.fromkeys(circles))
            label_index = {name: i for i, name in enumerate(labels)}
            cidx = np.fromiter(
                map(label_index.__getitem__, circles), dtype=np.int64, count=m
            )
        n_labels = len(labels)
        if top * n_labels + n_labels < 2**31:
            # User ids (and the owner*n_labels+circle group keys) fit in
            # int32: the stable radix argsorts below run half the passes.
            src = src.astype(np.int32)
            dst = dst.astype(np.int32)
            cidx = cidx.astype(np.int32)

        # Owner side. Two stable sorts: by owner (original edge order per
        # owner → all_members / new-link flags) and by (owner, circle)
        # (contiguous per-circle member slices, original order within).
        # Everything sliced inside the loop is converted to plain lists
        # up front — list slicing is far cheaper than per-slice tolist().
        order_src = np.argsort(src, kind="stable")
        s_by_src = src[order_src]
        d_by_src = dst[order_src].tolist()
        obounds = np.flatnonzero(np.diff(s_by_src)) + 1
        ostarts = np.concatenate(([0], obounds)).tolist()
        ostops = np.concatenate((obounds, [m])).tolist()
        owners = s_by_src[np.concatenate(([0], obounds))].tolist()

        if n_labels == 1:
            order_grp, key_sorted = order_src, s_by_src
        else:
            group_key = src * n_labels + cidx
            order_grp = np.argsort(group_key, kind="stable")
            key_sorted = group_key[order_grp]
        d_by_grp = dst[order_grp].tolist()
        gbounds = np.flatnonzero(np.diff(key_sorted)) + 1
        gstart_arr = np.concatenate(([0], gbounds))
        gstarts = gstart_arr.tolist()
        gstops = np.concatenate((gbounds, [m])).tolist()
        gowners = (key_sorted[gstart_arr] // n_labels).tolist()
        glabels = (key_sorted[gstart_arr] % n_labels).tolist()
        #: original index of each group's first edge — per owner, groups
        #: sorted by this value are in first-occurrence label order.
        gfirst = order_grp[gstart_arr].tolist()

        #: new-link flag per edge, in owner-sorted order.
        new_by_src = np.ones(m, dtype=bool)
        limit = OUT_CIRCLE_LIMIT
        n_groups = len(gowners)
        gp = 0  # group cursor: groups are sorted by owner, like owners
        fromkeys = dict.fromkeys
        for seg, owner in enumerate(owners):
            a, b = ostarts[seg], ostops[seg]
            store = accounts[owner].circles
            all_members = store.all_members
            members_seg = d_by_src[a:b]
            distinct = fromkeys(members_seg)
            if not all_members and b - a <= limit:
                # Fresh store, segment within the cap: no violation is
                # possible, exempt or not — the hot path for world gen.
                if len(distinct) != b - a:
                    # Duplicate (u, v) pairs inside the batch: only the
                    # first occurrence forms the link.
                    local: set[int] = set()
                    for pos, v in enumerate(members_seg, start=a):
                        if v in local:
                            new_by_src[pos] = False
                        else:
                            local.add(v)
                store.all_members = distinct
            elif all_members:
                fresh = [v for v in distinct if v not in all_members]
                if (
                    not store.exempt_from_limit
                    and len(all_members) + len(fresh) > OUT_CIRCLE_LIMIT
                ):
                    raise CircleLimitError(owner, OUT_CIRCLE_LIMIT)
                for pos, v in enumerate(members_seg, start=a):
                    if v in all_members:
                        new_by_src[pos] = False
                    else:
                        all_members[v] = None
            else:
                if (
                    not store.exempt_from_limit
                    and len(distinct) > OUT_CIRCLE_LIMIT
                ):
                    raise CircleLimitError(owner, OUT_CIRCLE_LIMIT)
                if len(distinct) != len(members_seg):
                    local2: set[int] = set()
                    for pos, v in enumerate(members_seg, start=a):
                        if v in local2:
                            new_by_src[pos] = False
                        else:
                            local2.add(v)
                store.all_members = distinct

            # Circle sub-dicts for this owner: its groups are contiguous
            # at the cursor. Visiting them by their first edge's original
            # position yields first-occurrence label order, so circles are
            # created exactly when the per-edge path would have created
            # them (order across owners is free).
            g0 = gp
            while gp < n_groups and gowners[gp] == owner:
                gp += 1
            by_circle = store.members_by_circle
            span = (
                range(g0, gp)
                if gp - g0 == 1
                else sorted(range(g0, gp), key=gfirst.__getitem__)
            )
            for g in span:
                name = labels[glabels[g]]
                chunk = fromkeys(d_by_grp[gstarts[g]:gstops[g]])
                existing = by_circle.get(name)
                if existing:
                    existing.update(chunk)
                else:
                    by_circle[name] = chunk

        # Target side: follower lists and notifications, for new links
        # only, in original edge order per target.
        new_links = int(new_by_src.sum())
        if new_links:
            if new_links == m:
                sub_src, sub_dst = src, dst
            else:
                new_orig = np.empty(m, dtype=bool)
                new_orig[order_src] = new_by_src
                sel = np.flatnonzero(new_orig)
                sub_src, sub_dst = src[sel], dst[sel]
            order_t = np.argsort(sub_dst, kind="stable")
            t_sorted = sub_dst[order_t]
            actor_list = sub_src[order_t].tolist()
            tbounds = np.flatnonzero(np.diff(t_sorted)) + 1
            tstart_arr = np.concatenate(([0], tbounds))
            tstarts = tstart_arr.tolist()
            tstops = np.concatenate((tbounds, [new_links])).tolist()
            tids = t_sorted[tstart_arr].tolist()
            # One cached Notification per actor: the dataclass is frozen
            # and compares by value, so sharing instances is identical to
            # constructing one per link. Every linking actor is an owner.
            note_of = {
                u: Notification(kind="added_to_circle", actor_id=u)
                for u in owners
            }
            notes_all = list(map(note_of.__getitem__, actor_list))
            for t, a, b in zip(tids, tstarts, tstops):
                account = accounts[t]
                chunk = dict.fromkeys(actor_list[a:b])
                if account.followers:
                    account.followers.update(chunk)
                else:
                    account.followers = chunk
                account.notifications.extend(notes_all[a:b])
        return new_links

    def remove_from_circle(
        self, user_id: int, target_id: int, circle: str | None = None
    ) -> bool:
        """Remove a contact from one circle (or all). True if the link died."""
        account = self._account(user_id)
        link_removed = account.circles.remove(target_id, circle)
        if link_removed:
            self._account(target_id).followers.pop(user_id, None)
        self._notify("circle_remove", user_id, target_id)
        return link_removed

    def followees(self, user_id: int) -> list[int]:
        """Users ``user_id`` has in circles ("In user's circles")."""
        return self._account(user_id).circles.flattened()

    def followers(self, user_id: int) -> list[int]:
        """Users that have ``user_id`` in circles ("Have user in circles")."""
        return list(self._account(user_id).followers)

    def out_degree(self, user_id: int) -> int:
        return self._account(user_id).circles.out_degree()

    def in_degree(self, user_id: int) -> int:
        return len(self._account(user_id).followers)

    def in_circles(self, owner_id: int, viewer_id: int) -> bool:
        """Whether the owner has the viewer in any circle (O(1))."""
        return self._account(owner_id).circles.contains(viewer_id)

    def in_extended_circles(self, owner_id: int, viewer_id: int) -> bool:
        """Whether the viewer is in the owner's circles, or in the
        circles of any of the owner's contacts (the EXTENDED_CIRCLES
        reach; O(owner's out-degree))."""
        owner = self._account(owner_id)
        if owner.circles.contains(viewer_id):
            return True
        return any(
            self._account(contact).circles.contains(viewer_id)
            for contact in owner.circles.flattened()
        )

    def circles_containing(self, owner_id, viewer_id, names) -> tuple[str, ...]:
        """Which of the owner's named circles hold the viewer, in the
        order ``names`` lists them (for CUSTOM privacy classing)."""
        circles = self._account(owner_id).circles
        return tuple(
            name for name in names if circles.member_of(viewer_id, name)
        )

    # -- profile mutation ----------------------------------------------------

    def update_field(
        self,
        user_id: int,
        key: str,
        value,
        privacy: FieldPrivacy | None = None,
    ) -> None:
        """Set or replace one optional profile field, notifying subscribers.

        This is the serving-side mutation path: unlike touching the
        :class:`~repro.platform.models.UserProfile` directly, it fires a
        ``profile`` :class:`MutationEvent` so caches drop the owner's
        rendered pages.
        """
        profile = self._account(user_id).profile
        if privacy is None:
            profile.set_field(key, value)
        else:
            profile.set_field(key, value, privacy)
        self._notify("profile", user_id)

    def set_lists_public(self, user_id: int, public: bool) -> None:
        """Toggle the owner's circle-list visibility, notifying subscribers."""
        self._account(user_id).profile.lists_public = bool(public)
        self._notify("profile", user_id)

    # -- privacy-aware profile views ----------------------------------------

    def can_view_field(self, owner_id: int, viewer_id: int | None, key: str) -> bool:
        """Decide whether ``viewer_id`` (None = anonymous) may see a field."""
        if key == "name":
            return True
        owner = self._account(owner_id)
        entry = owner.profile.fields.get(key)
        if entry is None:
            return False
        if viewer_id == owner_id:
            return True
        visibility = entry.privacy.visibility
        if visibility is Visibility.PUBLIC:
            return True
        if viewer_id is None:
            return False
        if visibility is Visibility.ONLY_YOU:
            return False
        if visibility is Visibility.YOUR_CIRCLES:
            return owner.circles.contains(viewer_id)
        if visibility is Visibility.EXTENDED_CIRCLES:
            if owner.circles.contains(viewer_id):
                return True
            return any(
                self._account(contact).circles.contains(viewer_id)
                for contact in owner.circles.flattened()
            )
        # CUSTOM: the viewer must be in one of the named circles.
        return any(
            owner.circles.member_of(viewer_id, name)
            for name in entry.privacy.custom_circles
        )

    def profile_page(self, user_id: int, viewer_id: int | None = None) -> ProfilePage:
        """Render the profile page as seen by ``viewer_id`` (None = crawler)."""
        account = self._account(user_id)
        profile = account.profile
        visible = {
            key: entry.value
            for key, entry in profile.fields.items()
            if self.can_view_field(user_id, viewer_id, key)
        }
        in_list = out_list = None
        if profile.lists_public or viewer_id == user_id:
            in_list = truncate_list(list(account.followers), self.circle_display_limit)
            out_list = truncate_list(
                account.circles.flattened(), self.circle_display_limit
            )
        return ProfilePage(
            user_id=user_id,
            name=profile.name,
            fields=visible,
            in_list=in_list,
            out_list=out_list,
        )

    # -- content layer (stream, +1, reshare) --------------------------------

    def publish(
        self,
        author_id: int,
        content: str,
        to_circles: frozenset[str] | None = None,
        reshared_from: int | None = None,
    ) -> Post:
        """Publish a post to the author's stream, optionally circle-scoped."""
        account = self._account(author_id)
        if to_circles is not None:
            unknown = to_circles - set(account.circles.circle_names())
            if unknown:
                raise ValueError(f"author has no circles named {sorted(unknown)}")
        if reshared_from is not None and reshared_from not in self._posts:
            raise KeyError(f"unknown post id: {reshared_from}")
        post = Post(
            post_id=self._next_post_id,
            author_id=author_id,
            content=content,
            to_circles=to_circles,
            reshared_from=reshared_from,
        )
        self._next_post_id += 1
        self._posts[post.post_id] = post
        self._notify("post", author_id, post.post_id)
        return post

    def notifications(self, user_id: int, clear: bool = False) -> list[Notification]:
        """The user's notification feed (optionally consuming it)."""
        account = self._account(user_id)
        items = list(account.notifications)
        if clear:
            account.notifications.clear()
        return items

    def plus_one(self, user_id: int, post_id: int) -> None:
        """Record a +1: a public recommendation of a post."""
        self._account(user_id)
        try:
            post = self._posts[post_id]
        except KeyError:
            raise KeyError(f"unknown post id: {post_id}") from None
        if user_id not in post.plus_ones:
            post.plus_ones.add(user_id)
            self._account(post.author_id).notifications.append(
                Notification(kind="plus_one", actor_id=user_id, subject_id=post_id)
            )
            self._notify("plus_one", user_id, post_id)

    def can_view_post(self, post_id: int, viewer_id: int | None) -> bool:
        """Circle-scoped posts are visible to members of the named circles."""
        post = self._posts[post_id]
        if post.to_circles is None:
            return True
        if viewer_id is None:
            return False
        if viewer_id == post.author_id:
            return True
        author = self._account(post.author_id)
        return any(
            author.circles.member_of(viewer_id, name)
            for name in post.to_circles
        )

    def stream_for(self, viewer_id: int) -> list[Post]:
        """Posts flowing into a user's stream from the circles they follow."""
        followed = set(self.followees(viewer_id))
        return [
            post
            for post in self._posts.values()
            if post.author_id in followed and self.can_view_post(post.post_id, viewer_id)
        ]

    # -- HTTP handler ---------------------------------------------------------

    def handle_path(
        self, path: str, viewer_id: int | None = None
    ) -> tuple[int, ProfilePage | None]:
        """Serve ``/u/<id>`` paths for :class:`repro.platform.http.HttpFrontend`.

        ``viewer_id`` is the logged-in requester; the crawler's requests
        default to ``None`` and see exactly the anonymous pages they
        always did.
        """
        if not path.startswith("/u/"):
            return STATUS_NOT_FOUND, None
        try:
            user_id = int(path[3:])
        except ValueError:
            return STATUS_NOT_FOUND, None
        if user_id not in self._accounts:
            return STATUS_NOT_FOUND, None
        return STATUS_OK, self.profile_page(user_id, viewer_id=viewer_id)
