"""Struct-of-arrays backing store for million-user worlds.

The dict-backed :class:`~repro.platform.service.GooglePlusService` spends
a few kilobytes of Python objects per account — a ``UserProfile``, one
``FieldValue`` per field, a ``CircleStore`` with two dicts, a follower
dict, a notification list.  At 100k users that is ~1 GB of RSS; at the
paper's multi-million-user scale it does not fit on a laptop at all.

This module stores the same world columnar:

* **Profiles** become one :class:`FieldColumn` per profile field — a
  ``uint16`` privacy-code array over all users (``0xFFFF`` = field
  absent) plus either a ``uint32`` code array into an interned value
  table or a *formula* deriving the value from the user id.  Shared
  values (occupation labels, relationship enums, pooled employers) are
  interned once; per-user values (phone numbers, profile URLs, places)
  are synthesised on access and never held resident.
* **Circles** become CSR arrays: ``out_indptr``/``out_targets`` with a
  ``uint8`` circle-label code per membership, plus a follower-side CSR —
  exactly the layout :mod:`repro.graph.csr` analyses, so a crawl over
  the columnar world reads arrays end to end.
* **Mutations** escape hatch through copy-on-write promotion: the first
  scalar write to an account's profile, circles, followers or
  notifications materialises that one component as the ordinary dict
  structure and all views transparently delegate to it from then on.
  Bulk reads never promote, so a crawl leaves the world columnar.

:class:`ColumnarGooglePlusService` subclasses the reference service and
keeps its entire scalar API: every method observable through
``GooglePlusService`` behaves identically (the hypothesis suite in
``tests/platform/test_columnar_stateful.py`` proves state-identity over
randomized op sequences, and the e2e test proves crawled edge arrays
bit-identical).  The dict-backed store stays the default engine, exactly
as ``fastgen`` left the reference generator the default.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any, Callable, Iterator

import numpy as np

from .circles import CircleStore, DEFAULT_CIRCLE, OUT_CIRCLE_LIMIT
from .errors import CircleLimitError, UnknownUserError
from .circles import CIRCLE_DISPLAY_LIMIT
from .models import FieldValue, UserProfile
from .fields import FIELDS_BY_KEY, FIELD_SPECS
from .pages import CircleListView, ProfilePage
from .privacy import FieldPrivacy, PUBLIC
from .service import GooglePlusService, Notification, _Account

__all__ = [
    "ABSENT",
    "ColumnarCircles",
    "ColumnarGooglePlusService",
    "ColumnarProfile",
    "ColumnarProfileStore",
    "FieldColumn",
    "ProfilesView",
]

#: Sentinel privacy code marking "field absent on this profile".
ABSENT = np.uint16(0xFFFF)

#: Field keys in registry order; ``key_code`` arrays index this tuple.
FIELD_KEYS: tuple[str, ...] = tuple(spec.key for spec in FIELD_SPECS)
_KEY_INDEX: dict[str, int] = {key: i for i, key in enumerate(FIELD_KEYS)}

#: Bound on the per-world cache of per-owner membership sets used by
#: ``contains``; one entry costs O(out-degree), so the cache is kept
#: far below the world size.
_MEMBER_SET_CACHE = 16_384


# ---------------------------------------------------------------------------
# profile columns
# ---------------------------------------------------------------------------


@dataclass
class FieldColumn:
    """One profile field over all base users.

    ``pcode[uid]`` indexes :attr:`privacies` (``ABSENT`` = the user does
    not carry the field).  The value is either ``values[vcode[uid]]``
    (interned table) or ``formula(uid)`` (synthesised per access; used
    for per-user values like phone numbers that would defeat interning).
    """

    pcode: np.ndarray
    privacies: list[FieldPrivacy]
    values: list[Any] | None = None
    vcode: np.ndarray | None = None
    formula: Callable[[int], Any] | None = None

    def __post_init__(self) -> None:
        if (self.values is None) == (self.formula is None):
            raise ValueError("exactly one of values/formula must be set")
        if self.values is not None and self.vcode is None:
            raise ValueError("table columns need a vcode array")

    def present(self, uid: int) -> bool:
        return self.pcode[uid] != ABSENT

    def privacy(self, uid: int) -> FieldPrivacy:
        return self.privacies[self.pcode[uid]]

    def value(self, uid: int) -> Any:
        if self.formula is not None:
            return self.formula(uid)
        return self.values[self.vcode[uid]]

    def entry(self, uid: int) -> FieldValue:
        """A fresh :class:`FieldValue` for the user (compares by value)."""
        return FieldValue(self.value(uid), self.privacies[self.pcode[uid]])


class ColumnarProfileStore:
    """All base-user profiles as columns.

    ``key_order`` is an optional CSR (``indptr``, ``key_codes``) pinning
    each user's field-dict iteration order; when ``None`` the canonical
    synth order (registry order of the present fields) is used, which
    costs no storage at all.
    """

    def __init__(
        self,
        n: int,
        columns: dict[str, FieldColumn],
        lists_public: np.ndarray,
        name_overrides: dict[int, str] | None = None,
        names: list[str] | None = None,
        key_order: tuple[np.ndarray, np.ndarray] | None = None,
        key_sequence: tuple[str, ...] | None = None,
    ):
        for key in columns:
            if key not in FIELDS_BY_KEY or key == "name":
                raise ValueError(f"unknown profile field: {key!r}")
        self.n = n
        self.columns = columns
        self.lists_public = lists_public
        self.name_overrides = name_overrides or {}
        self.names = names
        self.key_order = key_order
        #: Global field insertion order: every user's field dict iterates
        #: this sequence filtered by presence, which costs no per-user
        #: storage.  Defaults to registry order; the fast profile builder
        #: passes its own assembly order (gender first, contacts last).
        self.key_sequence = (
            key_sequence if key_sequence is not None else FIELD_KEYS
        )
        self._ordered = [
            (key, columns[key]) for key in self.key_sequence if key in columns
        ]

    def name_of(self, uid: int) -> str:
        if self.names is not None:
            return self.names[uid]
        override = self.name_overrides.get(uid)
        return override if override is not None else f"User {uid:06d}"

    def field_keys(self, uid: int) -> list[str]:
        """The user's field-dict keys, in insertion order."""
        if self.key_order is not None:
            indptr, codes = self.key_order
            return [
                FIELD_KEYS[c] for c in codes[indptr[uid] : indptr[uid + 1]].tolist()
            ]
        return [key for key, col in self._ordered if col.present(uid)]

    def iter_entries(self, uid: int) -> Iterator[tuple[str, FieldValue]]:
        for key in self.field_keys(uid):
            yield key, self.columns[key].entry(uid)

    def materialize_fields(self, uid: int) -> dict[str, FieldValue]:
        return {key: entry for key, entry in self.iter_entries(uid)}

    def materialize_profile(self, uid: int) -> UserProfile:
        return UserProfile(
            user_id=uid,
            name=self.name_of(uid),
            fields=self.materialize_fields(uid),
            lists_public=bool(self.lists_public[uid]),
        )

    @classmethod
    def from_profiles(cls, profiles: Mapping[int, UserProfile]) -> "ColumnarProfileStore":
        """Generic interning ingest of an id-contiguous profile dict.

        Value and privacy objects are interned by identity — the fast
        profile builder shares ``FieldValue`` instances across users, so
        identity interning compresses exactly where the data repeats.
        Used by the equivalence tests and by callers that already built
        object profiles; the memory-diet path builds columns directly
        (:func:`repro.synth.fastprofiles.build_profile_columns_fast`).
        """
        n = len(profiles)
        if sorted(profiles) != list(range(n)):
            raise ValueError("profiles must be keyed by the compact range 0..n-1")
        lists_public = np.zeros(n, dtype=bool)
        names: list[str] = [""] * n
        per_key_priv: dict[str, tuple[list[FieldPrivacy], dict[int, int]]] = {}
        per_key_vals: dict[str, tuple[list[Any], dict[int, int]]] = {}
        pcodes: dict[str, np.ndarray] = {}
        vcodes: dict[str, np.ndarray] = {}
        indptr = np.zeros(n + 1, dtype=np.int64)
        key_codes: list[int] = []
        canonical = True
        for uid in range(n):
            profile = profiles[uid]
            if profile.user_id != uid:
                raise ValueError(f"profile under key {uid} has user_id {profile.user_id}")
            lists_public[uid] = profile.lists_public
            names[uid] = profile.name
            keys = list(profile.fields)
            indptr[uid + 1] = indptr[uid] + len(keys)
            key_codes.extend(_KEY_INDEX[k] for k in keys)
            if keys != [k for k in FIELD_KEYS if k in profile.fields]:
                canonical = False
            for key, entry in profile.fields.items():
                if key not in pcodes:
                    pcodes[key] = np.full(n, ABSENT, dtype=np.uint16)
                    vcodes[key] = np.zeros(n, dtype=np.uint32)
                    per_key_priv[key] = ([], {})
                    per_key_vals[key] = ([], {})
                privs, priv_ids = per_key_priv[key]
                vals, val_ids = per_key_vals[key]
                pi = priv_ids.get(id(entry.privacy))
                if pi is None:
                    pi = priv_ids[id(entry.privacy)] = len(privs)
                    privs.append(entry.privacy)
                vi = val_ids.get(id(entry.value))
                if vi is None:
                    vi = val_ids[id(entry.value)] = len(vals)
                    vals.append(entry.value)
                pcodes[key][uid] = pi
                vcodes[key][uid] = vi
        columns = {
            key: FieldColumn(
                pcode=pcodes[key],
                privacies=per_key_priv[key][0],
                values=per_key_vals[key][0],
                vcode=vcodes[key],
            )
            for key in pcodes
        }
        key_order = None
        if not canonical:
            key_order = (indptr, np.asarray(key_codes, dtype=np.uint8))
        return cls(
            n=n,
            columns=columns,
            lists_public=lists_public,
            names=names,
            key_order=key_order,
        )


# ---------------------------------------------------------------------------
# circle / follower CSR
# ---------------------------------------------------------------------------


def _csr_by(keys: np.ndarray, n: int) -> np.ndarray:
    """indptr over rows ``0..n-1`` from the sorted row-id array ``keys``."""
    counts = np.bincount(keys, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr


@dataclass
class ColumnarCircles:
    """Circle memberships and follower lists for all base users, CSR form.

    ``out_targets[out_indptr[u]:out_indptr[u+1]]`` are ``u``'s circle
    memberships in insertion order, each labelled by ``out_labels``
    (codes into :attr:`labels`).  ``flat_*`` is the contact list with
    duplicate targets removed (first occurrence wins) — when the ingest
    batch has no duplicate ``(u, v)`` pairs the arrays are shared with
    the membership CSR and cost nothing.  ``in_*`` is the follower CSR
    over *links* (deduplicated), per target in original edge order.
    """

    labels: tuple[str, ...]
    out_indptr: np.ndarray
    out_targets: np.ndarray
    out_labels: np.ndarray
    flat_indptr: np.ndarray
    flat_targets: np.ndarray
    in_indptr: np.ndarray
    in_sources: np.ndarray

    @classmethod
    def build(
        cls,
        n: int,
        sources: np.ndarray,
        targets: np.ndarray,
        label_codes: np.ndarray,
        labels: tuple[str, ...],
        exempt: np.ndarray,
    ) -> "ColumnarCircles":
        """Build both CSR sides from an edge batch, validating the cap.

        Raises :class:`CircleLimitError` when a non-exempt owner exceeds
        :data:`OUT_CIRCLE_LIMIT` distinct contacts, exactly as the
        per-edge ingest would.
        """
        src = np.ascontiguousarray(sources, dtype=np.int64)
        dst = np.ascontiguousarray(targets, dtype=np.int64)
        lab = np.ascontiguousarray(label_codes, dtype=np.uint8)
        m = len(src)
        if dst.shape != src.shape or lab.shape != src.shape:
            raise ValueError("sources/targets/labels must have equal length")
        idt = np.int32 if n <= np.iinfo(np.int32).max else np.int64
        order = np.argsort(src, kind="stable")
        out_targets = dst[order].astype(idt)
        out_labels = lab[order]
        out_indptr = _csr_by(src[order], n)
        # The permutation is O(edges) int64 — drop it before the dedup
        # pass so the two never coexist (this is the ingest peak at 1M+
        # users).
        del order

        # Duplicate (u, v) pairs: only the first forms a link.  A plain
        # value sort answers the common no-duplicates case without the
        # index permutation np.unique(return_index=True) would build.
        packed = src * np.int64(n) + dst
        packed_sorted = np.sort(packed)
        has_dups = bool(np.any(packed_sorted[1:] == packed_sorted[:-1]))
        del packed_sorted
        if not has_dups:
            del packed
            link_src, link_dst = src, dst
            flat_indptr, flat_targets = out_indptr, out_targets
        else:
            _, first = np.unique(packed, return_index=True)
            del packed
            keep = np.zeros(m, dtype=bool)
            keep[first] = True
            link_src, link_dst = src[keep], dst[keep]
            lorder = np.argsort(link_src, kind="stable")
            flat_targets = link_dst[lorder].astype(idt)
            flat_indptr = _csr_by(link_src[lorder], n)

        degrees = np.diff(flat_indptr)
        over = np.flatnonzero((degrees > OUT_CIRCLE_LIMIT) & ~exempt)
        if len(over):
            raise CircleLimitError(int(over[0]), OUT_CIRCLE_LIMIT)

        torder = np.argsort(link_dst, kind="stable")
        in_sources = link_src[torder].astype(idt)
        in_indptr = _csr_by(link_dst[torder], n)
        return cls(
            labels=labels,
            out_indptr=out_indptr,
            out_targets=out_targets,
            out_labels=out_labels,
            flat_indptr=flat_indptr,
            flat_targets=flat_targets,
            in_indptr=in_indptr,
            in_sources=in_sources,
        )

    def out_slice(self, uid: int) -> np.ndarray:
        return self.flat_targets[self.flat_indptr[uid] : self.flat_indptr[uid + 1]]

    def in_slice(self, uid: int) -> np.ndarray:
        return self.in_sources[self.in_indptr[uid] : self.in_indptr[uid + 1]]

    def out_degree(self, uid: int) -> int:
        return int(self.flat_indptr[uid + 1] - self.flat_indptr[uid])

    def in_degree(self, uid: int) -> int:
        return int(self.in_indptr[uid + 1] - self.in_indptr[uid])

    def memberships(self, uid: int) -> tuple[np.ndarray, np.ndarray]:
        lo, hi = self.out_indptr[uid], self.out_indptr[uid + 1]
        return self.out_targets[lo:hi], self.out_labels[lo:hi]

    def circle_names(self, uid: int) -> list[str]:
        """The owner's circle names: the default circle created at
        registration, then this owner's labels in first-edge order."""
        names = [DEFAULT_CIRCLE]
        _, labs = self.memberships(uid)
        seen = {DEFAULT_CIRCLE}
        for code in labs.tolist():
            name = self.labels[code]
            if name not in seen:
                seen.add(name)
                names.append(name)
        return names

    def members_of(self, uid: int, circle: str) -> list[int]:
        targets, labs = self.memberships(uid)
        try:
            code = self.labels.index(circle)
        except ValueError:
            return []
        return targets[labs == np.uint8(code)].tolist()

    def materialize_store(self, uid: int, exempt: bool) -> CircleStore:
        """The owner's circles as an ordinary dict-backed CircleStore."""
        members_by_circle: dict[str, dict[int, None]] = {DEFAULT_CIRCLE: {}}
        targets, labs = self.memberships(uid)
        for target, code in zip(targets.tolist(), labs.tolist()):
            members_by_circle.setdefault(self.labels[code], {})[target] = None
        return CircleStore(
            owner_id=uid,
            exempt_from_limit=exempt,
            members_by_circle=members_by_circle,
            all_members=dict.fromkeys(self.out_slice(uid).tolist()),
        )

    @classmethod
    def empty(cls, n: int) -> "ColumnarCircles":
        zero = np.zeros(n + 1, dtype=np.int64)
        none32 = np.zeros(0, dtype=np.int32)
        return cls(
            labels=(),
            out_indptr=zero,
            out_targets=none32,
            out_labels=np.zeros(0, dtype=np.uint8),
            flat_indptr=zero,
            flat_targets=none32,
            in_indptr=zero.copy(),
            in_sources=none32,
        )


# ---------------------------------------------------------------------------
# views — UserProfile / CircleStore / followers / notifications lookalikes
# ---------------------------------------------------------------------------


class _FieldsView(Mapping):
    """Read-through mapping view of one user's profile fields.

    Mutating operations promote the profile to an ordinary dict-backed
    :class:`UserProfile` held in the service's overlay, and every view
    operation re-checks the overlay first, so stale handles are
    impossible.
    """

    __slots__ = ("_world", "_uid")

    def __init__(self, world: "_ColumnarWorld", uid: int):
        self._world = world
        self._uid = uid

    def _ovl(self) -> dict[str, FieldValue] | None:
        profile = self._world.profile_overlay.get(self._uid)
        return None if profile is None else profile.fields

    def __getitem__(self, key: str) -> FieldValue:
        ovl = self._ovl()
        if ovl is not None:
            return ovl[key]
        column = self._world.profiles.columns.get(key)
        if column is None or not column.present(self._uid):
            raise KeyError(key)
        return column.entry(self._uid)

    def get(self, key: str, default=None):
        ovl = self._ovl()
        if ovl is not None:
            return ovl.get(key, default)
        column = self._world.profiles.columns.get(key)
        if column is None or not column.present(self._uid):
            return default
        return column.entry(self._uid)

    def __contains__(self, key: object) -> bool:
        ovl = self._ovl()
        if ovl is not None:
            return key in ovl
        column = self._world.profiles.columns.get(key)
        return column is not None and column.present(self._uid)

    def __iter__(self) -> Iterator[str]:
        ovl = self._ovl()
        if ovl is not None:
            return iter(ovl)
        return iter(self._world.profiles.field_keys(self._uid))

    def __len__(self) -> int:
        ovl = self._ovl()
        if ovl is not None:
            return len(ovl)
        return len(self._world.profiles.field_keys(self._uid))

    def items(self):
        ovl = self._ovl()
        if ovl is not None:
            return ovl.items()
        return list(self._world.profiles.iter_entries(self._uid))

    def __setitem__(self, key: str, value: FieldValue) -> None:
        self._world.promote_profile(self._uid).fields[key] = value

    def __delitem__(self, key: str) -> None:
        del self._world.promote_profile(self._uid).fields[key]


class ColumnarProfile:
    """A :class:`UserProfile`-shaped view over the profile columns."""

    __slots__ = ("_world", "user_id")

    def __init__(self, world: "_ColumnarWorld", uid: int):
        self._world = world
        self.user_id = uid

    def _ovl(self) -> UserProfile | None:
        return self._world.profile_overlay.get(self.user_id)

    @property
    def name(self) -> str:
        ovl = self._ovl()
        if ovl is not None:
            return ovl.name
        return self._world.profiles.name_of(self.user_id)

    @property
    def fields(self) -> Mapping:
        ovl = self._ovl()
        if ovl is not None:
            return ovl.fields
        return _FieldsView(self._world, self.user_id)

    @property
    def lists_public(self) -> bool:
        ovl = self._ovl()
        if ovl is not None:
            return ovl.lists_public
        return bool(self._world.profiles.lists_public[self.user_id])

    @lists_public.setter
    def lists_public(self, public: bool) -> None:
        ovl = self._ovl()
        if ovl is not None:
            ovl.lists_public = bool(public)
        else:
            self._world.profiles.lists_public[self.user_id] = bool(public)

    def set_field(self, key: str, value: Any, privacy: FieldPrivacy = PUBLIC) -> None:
        self._world.promote_profile(self.user_id).set_field(key, value, privacy)

    # The read helpers are duck-typed off UserProfile: they only touch
    # ``name`` / ``fields`` / ``get_public``, all of which this view
    # provides, so the reference implementations apply verbatim.
    get_public = UserProfile.get_public
    public_field_keys = UserProfile.public_field_keys
    count_public_fields = UserProfile.count_public_fields
    shares_phone_publicly = UserProfile.shares_phone_publicly
    current_place = UserProfile.current_place


class _CirclesView:
    """A :class:`CircleStore`-shaped view over the circle CSR.

    Read methods are columnar; any write — and any access to the raw
    ``members_by_circle`` / ``all_members`` dicts — promotes the owner's
    circles to an ordinary :class:`CircleStore` first.
    """

    __slots__ = ("_world", "owner_id")

    def __init__(self, world: "_ColumnarWorld", uid: int):
        self._world = world
        self.owner_id = uid

    def _ovl(self) -> CircleStore | None:
        return self._world.circle_overlay.get(self.owner_id)

    def _promote(self) -> CircleStore:
        return self._world.promote_circles(self.owner_id)

    @property
    def exempt_from_limit(self) -> bool:
        ovl = self._ovl()
        if ovl is not None:
            return ovl.exempt_from_limit
        return bool(self._world.exempt[self.owner_id])

    @property
    def members_by_circle(self) -> dict[str, dict[int, None]]:
        return self._promote().members_by_circle

    @members_by_circle.setter
    def members_by_circle(self, value) -> None:
        self._promote().members_by_circle = value

    @property
    def all_members(self) -> dict[int, None]:
        return self._promote().all_members

    @all_members.setter
    def all_members(self, value) -> None:
        self._promote().all_members = value

    def create_circle(self, name: str) -> None:
        self._promote().create_circle(name)

    def add(self, target_id: int, circle: str = DEFAULT_CIRCLE) -> bool:
        return self._promote().add(target_id, circle)

    def extend(self, target_ids, circle: str = DEFAULT_CIRCLE) -> list[int]:
        return self._promote().extend(target_ids, circle)

    def remove(self, target_id: int, circle: str | None = None) -> bool:
        return self._promote().remove(target_id, circle)

    def circle_names(self) -> list[str]:
        ovl = self._ovl()
        if ovl is not None:
            return ovl.circle_names()
        return self._world.circles.circle_names(self.owner_id)

    def contains(self, target_id: int) -> bool:
        ovl = self._ovl()
        if ovl is not None:
            return ovl.contains(target_id)
        return self._world.member_set(self.owner_id).__contains__(target_id)

    def member_of(self, target_id: int, circle: str) -> bool:
        ovl = self._ovl()
        if ovl is not None:
            return ovl.member_of(target_id, circle)
        circles = self._world.circles
        try:
            code = circles.labels.index(circle)
        except ValueError:
            return False
        targets, labs = circles.memberships(self.owner_id)
        hit = (targets == target_id) & (labs == np.uint8(code))
        return bool(hit.any()) if len(targets) else False

    def circles_of(self, target_id: int) -> list[str]:
        ovl = self._ovl()
        if ovl is not None:
            return ovl.circles_of(target_id)
        circles = self._world.circles
        targets, labs = circles.memberships(self.owner_id)
        hits = {
            circles.labels[code]
            for target, code in zip(targets.tolist(), labs.tolist())
            if target == target_id
        }
        # Match dict iteration order: the default circle first (created
        # empty at registration), then labels in first-edge order.
        return [
            name for name in circles.circle_names(self.owner_id) if name in hits
        ]

    def out_degree(self) -> int:
        ovl = self._ovl()
        if ovl is not None:
            return ovl.out_degree()
        return self._world.circles.out_degree(self.owner_id)

    def flattened(self) -> list[int]:
        ovl = self._ovl()
        if ovl is not None:
            return ovl.flattened()
        return self._world.circles.out_slice(self.owner_id).tolist()


class _FollowersView:
    """Dict-shaped view of one user's followers (insertion-ordered)."""

    __slots__ = ("_world", "_uid")

    def __init__(self, world: "_ColumnarWorld", uid: int):
        self._world = world
        self._uid = uid

    def _ovl(self) -> dict[int, None] | None:
        return self._world.follower_overlay.get(self._uid)

    def _promote(self) -> dict[int, None]:
        return self._world.promote_followers(self._uid)

    def __iter__(self) -> Iterator[int]:
        ovl = self._ovl()
        if ovl is not None:
            return iter(ovl)
        return iter(self._world.circles.in_slice(self._uid).tolist())

    def __len__(self) -> int:
        ovl = self._ovl()
        if ovl is not None:
            return len(ovl)
        return self._world.circles.in_degree(self._uid)

    def __contains__(self, uid: object) -> bool:
        ovl = self._ovl()
        if ovl is not None:
            return uid in ovl
        slice_ = self._world.circles.in_slice(self._uid)
        return bool(np.any(slice_ == uid)) if len(slice_) else False

    def __bool__(self) -> bool:
        return len(self) > 0

    def __setitem__(self, uid: int, value: None) -> None:
        self._promote()[uid] = value

    def pop(self, uid: int, *default):
        return self._promote().pop(uid, *default)

    def update(self, other) -> None:
        self._promote().update(other)

    def keys(self):
        return list(self)


class _NotificationsView:
    """List-shaped view of a user's notification feed.

    The base feed is derived from the follower CSR (one
    ``added_to_circle`` per incoming link, in link order); appends and
    clears promote to a real list.
    """

    __slots__ = ("_world", "_uid")

    def __init__(self, world: "_ColumnarWorld", uid: int):
        self._world = world
        self._uid = uid

    def _ovl(self) -> list[Notification] | None:
        return self._world.notification_overlay.get(self._uid)

    def _materialize(self) -> list[Notification]:
        return self._world.promote_notifications(self._uid)

    def __iter__(self) -> Iterator[Notification]:
        ovl = self._ovl()
        if ovl is not None:
            return iter(ovl)
        return (
            Notification(kind="added_to_circle", actor_id=actor)
            for actor in self._world.circles.in_slice(self._uid).tolist()
        )

    def __len__(self) -> int:
        ovl = self._ovl()
        if ovl is not None:
            return len(ovl)
        return self._world.circles.in_degree(self._uid)

    def append(self, note: Notification) -> None:
        self._materialize().append(note)

    def extend(self, notes) -> None:
        self._materialize().extend(notes)

    def clear(self) -> None:
        # Clearing needs no materialisation of the derived feed.
        self._world.notification_overlay[self._uid] = []


class _LazyAccount:
    """The ``_Account`` lookalike handed out for base (columnar) users."""

    __slots__ = ("_world", "user_id")

    def __init__(self, world: "_ColumnarWorld", uid: int):
        self._world = world
        self.user_id = uid

    @property
    def profile(self) -> ColumnarProfile:
        return ColumnarProfile(self._world, self.user_id)

    @property
    def circles(self) -> _CirclesView:
        return _CirclesView(self._world, self.user_id)

    @property
    def followers(self) -> _FollowersView:
        return _FollowersView(self._world, self.user_id)

    @followers.setter
    def followers(self, value: dict[int, None]) -> None:
        self._world.follower_overlay[self.user_id] = value

    @property
    def notifications(self) -> _NotificationsView:
        return _NotificationsView(self._world, self.user_id)

    @notifications.setter
    def notifications(self, value: list[Notification]) -> None:
        self._world.notification_overlay[self.user_id] = list(value)


class _ColumnarWorld:
    """The columnar state: profile columns, circle CSR, and the
    copy-on-write overlays that absorb scalar mutations."""

    def __init__(
        self,
        profiles: ColumnarProfileStore,
        circles: ColumnarCircles,
        exempt: np.ndarray,
    ):
        self.profiles = profiles
        self.circles = circles
        self.exempt = exempt
        self.n = profiles.n
        self.profile_overlay: dict[int, UserProfile] = {}
        self.circle_overlay: dict[int, CircleStore] = {}
        self.follower_overlay: dict[int, dict[int, None]] = {}
        self.notification_overlay: dict[int, list[Notification]] = {}
        self._member_sets: dict[int, frozenset] = {}

    # -- promotion ---------------------------------------------------------

    def promote_profile(self, uid: int) -> UserProfile:
        profile = self.profile_overlay.get(uid)
        if profile is None:
            profile = self.profiles.materialize_profile(uid)
            self.profile_overlay[uid] = profile
        return profile

    def promote_circles(self, uid: int) -> CircleStore:
        store = self.circle_overlay.get(uid)
        if store is None:
            store = self.circles.materialize_store(uid, bool(self.exempt[uid]))
            self.circle_overlay[uid] = store
            self._member_sets.pop(uid, None)
        return store

    def promote_followers(self, uid: int) -> dict[int, None]:
        followers = self.follower_overlay.get(uid)
        if followers is None:
            followers = dict.fromkeys(self.circles.in_slice(uid).tolist())
            self.follower_overlay[uid] = followers
        return followers

    def promote_notifications(self, uid: int) -> list[Notification]:
        notes = self.notification_overlay.get(uid)
        if notes is None:
            notes = [
                Notification(kind="added_to_circle", actor_id=actor)
                for actor in self.circles.in_slice(uid).tolist()
            ]
            self.notification_overlay[uid] = notes
        return notes

    def member_set(self, uid: int) -> frozenset:
        cached = self._member_sets.get(uid)
        if cached is None:
            if len(self._member_sets) >= _MEMBER_SET_CACHE:
                self._member_sets.clear()
            cached = frozenset(self.circles.out_slice(uid).tolist())
            self._member_sets[uid] = cached
        return cached


class ColumnarAccounts(Mapping):
    """The service's ``_accounts`` mapping over a columnar world.

    Base users resolve to transient :class:`_LazyAccount` views; users
    registered after the bulk ingest live in an ordinary dict overlay.
    """

    def __init__(self, world: _ColumnarWorld):
        self._world = world
        self._new: dict[int, _Account] = {}

    def __getitem__(self, uid: int) -> Any:
        if 0 <= uid < self._world.n:
            return _LazyAccount(self._world, uid)
        try:
            return self._new[uid]
        except KeyError:
            raise KeyError(uid) from None

    def __setitem__(self, uid: int, account: _Account) -> None:
        if 0 <= uid < self._world.n:
            raise ValueError(f"user {uid} is part of the columnar base world")
        self._new[uid] = account

    def __contains__(self, uid: object) -> bool:
        return (
            isinstance(uid, (int, np.integer))
            and (0 <= uid < self._world.n or uid in self._new)
        )

    def __iter__(self) -> Iterator[int]:
        yield from range(self._world.n)
        yield from self._new

    def __len__(self) -> int:
        return self._world.n + len(self._new)

    def keys(self):
        return iter(self)


class ProfilesView(Mapping):
    """Read-only ``{user_id: profile}`` mapping over a columnar service —
    what :attr:`repro.synth.world.SyntheticWorld.profiles` holds when the
    world is built on the columnar store (no object per user)."""

    def __init__(self, service: "ColumnarGooglePlusService"):
        self._service = service

    def __getitem__(self, uid: int):
        if uid not in self._service:
            raise KeyError(uid)
        return self._service.profile(uid)

    def __iter__(self):
        return self._service.user_ids()

    def __len__(self) -> int:
        return len(self._service)


# ---------------------------------------------------------------------------
# the service
# ---------------------------------------------------------------------------


class ColumnarGooglePlusService(GooglePlusService):
    """:class:`GooglePlusService` backed by struct-of-arrays storage.

    Construct empty, then :meth:`ingest_world` exactly once with the
    bulk-generated columns; scalar mutations afterwards promote the
    touched component per account.  All inherited methods work through
    the account views; the hot read paths (``profile_page``,
    ``followers``, ``followees``) are overridden to read the CSR slices
    directly and, for display-truncated lists, to materialise only the
    displayed prefix.
    """

    def __init__(
        self,
        open_signup: bool = False,
        circle_display_limit: int = CIRCLE_DISPLAY_LIMIT,
    ):
        super().__init__(
            open_signup=open_signup, circle_display_limit=circle_display_limit
        )
        empty = _ColumnarWorld(
            ColumnarProfileStore(
                n=0,
                columns={},
                lists_public=np.zeros(0, dtype=bool),
            ),
            ColumnarCircles.empty(0),
            np.zeros(0, dtype=bool),
        )
        self._world = empty
        self._accounts = ColumnarAccounts(empty)

    @property
    def backend(self) -> str:
        return "columnar"

    # -- bulk ingest ---------------------------------------------------------

    def ingest_world(
        self,
        profiles: ColumnarProfileStore,
        sources: np.ndarray,
        targets: np.ndarray,
        circle_labels: tuple[str, ...],
        label_codes: np.ndarray,
        exempt_ids=(),
    ) -> int:
        """Adopt a bulk-generated world: profile columns plus the edge
        batch, equivalent to registering every profile and then calling
        ``add_to_circle`` per edge in order.  Returns the link count.
        """
        if len(self._accounts):
            raise ValueError("ingest_world must run on an empty service")
        n = profiles.n
        exempt = np.zeros(n, dtype=bool)
        ids = [int(u) for u in exempt_ids if 0 <= int(u) < n]
        if ids:
            exempt[ids] = True
        src = np.asarray(sources, dtype=np.int64)
        dst = np.asarray(targets, dtype=np.int64)
        if len(src):
            lo = min(int(src.min()), int(dst.min()))
            hi = max(int(src.max()), int(dst.max()))
            if lo < 0 or hi >= n:
                raise UnknownUserError(lo if lo < 0 else hi)
            if bool((src == dst).any()):
                raise ValueError(
                    "users cannot add themselves to their own circles"
                )
        circles = ColumnarCircles.build(
            n, src, dst, label_codes, circle_labels, exempt
        )
        world = _ColumnarWorld(profiles, circles, exempt)
        self._world = world
        self._accounts = ColumnarAccounts(world)
        if len(src):
            self._notify("bulk_edges", -1)
        return int(len(circles.in_sources))

    def columns(self) -> _ColumnarWorld:
        """The backing columnar world (benchmarks, spill, inspection)."""
        return self._world

    # -- hot read paths ------------------------------------------------------

    def _base_reads(self, uid: int) -> bool:
        """Whether a base user's reads may go straight to the columns."""
        world = self._world
        return 0 <= uid < world.n

    def followers(self, user_id: int) -> list[int]:
        world = self._world
        if self._base_reads(user_id) and user_id not in world.follower_overlay:
            return world.circles.in_slice(user_id).tolist()
        return super().followers(user_id)

    def followees(self, user_id: int) -> list[int]:
        world = self._world
        if self._base_reads(user_id) and user_id not in world.circle_overlay:
            return world.circles.out_slice(user_id).tolist()
        return super().followees(user_id)

    def profile_page(self, user_id: int, viewer_id: int | None = None) -> ProfilePage:
        world = self._world
        if not self._base_reads(user_id):
            return super().profile_page(user_id, viewer_id=viewer_id)
        account = self._account(user_id)
        profile = account.profile
        visible = {
            key: entry.value
            for key, entry in profile.fields.items()
            if self.can_view_field(user_id, viewer_id, key)
        }
        in_list = out_list = None
        if profile.lists_public or viewer_id == user_id:
            # Materialise only the displayed prefix; the CSR indptr
            # supplies the true count the paper's lost-edge estimate
            # reads, without building a million-entry list.
            limit = self.circle_display_limit
            if user_id in world.follower_overlay:
                in_ids = list(world.follower_overlay[user_id])
                in_count = len(in_ids)
            else:
                in_count = world.circles.in_degree(user_id)
                in_ids = world.circles.in_slice(user_id)[:limit].tolist()
            if user_id in world.circle_overlay:
                out_ids = world.circle_overlay[user_id].flattened()
                out_count = len(out_ids)
            else:
                out_count = world.circles.out_degree(user_id)
                out_ids = world.circles.out_slice(user_id)[:limit].tolist()
            in_list = CircleListView(tuple(in_ids[:limit]), in_count)
            out_list = CircleListView(tuple(out_ids[:limit]), out_count)
        return ProfilePage(
            user_id=user_id,
            name=profile.name,
            fields=visible,
            in_list=in_list,
            out_list=out_list,
        )
