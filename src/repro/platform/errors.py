"""Exceptions raised by the simulated Google+ platform."""

from __future__ import annotations


class PlatformError(Exception):
    """Base class for all platform-level errors."""


class UnknownUserError(PlatformError, KeyError):
    """Raised when an operation references a user id that does not exist."""

    def __init__(self, user_id: int):
        super().__init__(f"unknown user id: {user_id}")
        self.user_id = user_id


class SignupClosedError(PlatformError):
    """Raised when signing up without an invitation during the field trial."""


class AlreadyRegisteredError(PlatformError):
    """Raised when a user id is registered twice."""

    def __init__(self, user_id: int):
        super().__init__(f"user id already registered: {user_id}")
        self.user_id = user_id


class CircleLimitError(PlatformError):
    """Raised when a non-whitelisted user exceeds the out-circle size cap."""

    def __init__(self, user_id: int, limit: int):
        super().__init__(
            f"user {user_id} reached the out-circle limit of {limit} contacts"
        )
        self.user_id = user_id
        self.limit = limit


class UnknownCircleError(PlatformError, KeyError):
    """Raised when referencing a circle name a user does not own."""

    def __init__(self, user_id: int, circle: str):
        super().__init__(f"user {user_id} has no circle named {circle!r}")
        self.user_id = user_id
        self.circle = circle


class RateLimitedError(PlatformError):
    """Raised internally when a client IP exceeds its request budget."""

    def __init__(self, ip: str, retry_after: float):
        super().__init__(f"ip {ip} rate limited; retry after {retry_after:.2f}s")
        self.ip = ip
        self.retry_after = retry_after
