"""Simulated HTTP front end of the Google+ service.

The authors collected profiles "by making HTTP requests to publicly
available user profile pages" from 11 machines with different IP addresses
(Section 2.2). This module reproduces the transport-level conditions a
large crawl faces — per-IP rate limiting, transient server errors, and a
simulated clock — without any real network I/O, so crawls are fast and
perfectly deterministic.
"""

from __future__ import annotations

import copy
import inspect
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.faults.schedule import (
    BernoulliErrors,
    FaultSchedule,
    STATUS_FORBIDDEN,
    STATUS_REQUEST_TIMEOUT,
    corrupt_payload,
)
from repro.obs.metrics import Registry, get_registry, log_buckets

#: HTTP-ish status codes the simulated server can return.  403 and 408
#: are injected by the fault layer (:mod:`repro.faults`) and defined
#: there; they are re-exported here as the canonical status namespace.
STATUS_OK = 200
STATUS_NOT_FOUND = 404
STATUS_TOO_MANY_REQUESTS = 429
STATUS_SERVER_ERROR = 503

#: Statuses that signal a transient condition worth retrying: throttle,
#: flake/outage, temporary ban, and request timeout.
RETRYABLE_STATUSES = frozenset(
    {
        STATUS_TOO_MANY_REQUESTS,
        STATUS_SERVER_ERROR,
        STATUS_FORBIDDEN,
        STATUS_REQUEST_TIMEOUT,
    }
)


@dataclass(frozen=True)
class Request:
    """One client request: a path such as ``/u/123`` from a client IP.

    ``viewer_id`` identifies the logged-in user issuing the request;
    ``None`` is an anonymous client — the crawler's case — which keeps
    every pre-existing request equivalent to the two-argument form.
    """

    path: str
    client_ip: str
    viewer_id: int | None = None


@dataclass(frozen=True)
class Response:
    """The server's reply. ``payload`` carries the page document on 200.

    ``slow_by`` is extra virtual latency a fault rule attached to a
    successful response — the client must spend it on the clock.
    """

    status: int
    payload: Any = None
    retry_after: float = 0.0
    slow_by: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def should_retry(self) -> bool:
        """True for transient statuses (429 throttle, 503 flake/outage,
        403 temporary ban, 408 timeout).

        Clients should wait at least :attr:`retry_after` (the server's
        advertised delay; 0 when it offered none) before retrying.
        """
        return self.status in RETRYABLE_STATUSES


class SimulatedClock:
    """A monotonically advancing virtual clock shared by server and clients."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("the clock only moves forward")
        self._now += seconds
        return self._now

    def restore(self, now: float) -> None:
        """Jump to an absolute (not earlier) time — checkpoint resume."""
        if now < self._now:
            raise ValueError("the clock only moves forward")
        self._now = float(now)


@dataclass
class TokenBucket:
    """Classic token-bucket limiter: ``rate`` tokens/s, burst of ``capacity``."""

    rate: float
    capacity: float
    tokens: float = field(default=-1.0)
    last_refill: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.capacity <= 0:
            raise ValueError("rate and capacity must be positive")
        if self.tokens < 0:
            self.tokens = self.capacity

    def try_take(self, now: float) -> tuple[bool, float]:
        """Attempt to consume one token at virtual time ``now``.

        Returns ``(granted, retry_after)``; ``retry_after`` is the delay
        until a token will be available when the request is refused.
        """
        elapsed = max(0.0, now - self.last_refill)
        self.tokens = min(self.capacity, self.tokens + elapsed * self.rate)
        self.last_refill = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self.tokens) / self.rate


class RateLimiter:
    """Per-client-IP token buckets, as a web front end would maintain.

    Buckets are pruned on a fixed virtual-time cadence: an idle bucket
    that has refilled to capacity is byte-for-byte equivalent to the
    fresh bucket :meth:`admit` would lazily recreate, so dropping it
    cannot change any future admission decision.  Without the prune the
    table grows one bucket per distinct client IP forever — a real leak
    once thousands of load-generator clients hit the front end.  The
    prune clock (``_last_prune``) rides ``export_state`` so a resumed
    run prunes at the same virtual times as an uninterrupted one.
    """

    def __init__(
        self,
        rate_per_ip: float,
        burst: float,
        clock: SimulatedClock,
        prune_interval: float = 300.0,
    ):
        self._rate = rate_per_ip
        self._burst = burst
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        #: Virtual seconds between idle-bucket sweeps (0 disables).
        self._prune_interval = prune_interval
        self._last_prune = clock.now()

    def __len__(self) -> int:
        return len(self._buckets)

    def admit(self, ip: str) -> tuple[bool, float]:
        now = self._clock.now()
        if self._prune_interval and now - self._last_prune >= self._prune_interval:
            self.prune(now)
        bucket = self._buckets.get(ip)
        if bucket is None:
            bucket = TokenBucket(self._rate, self._burst)
            bucket.last_refill = now
            self._buckets[ip] = bucket
        return bucket.try_take(now)

    def prune(self, now: float) -> int:
        """Drop every bucket that has refilled to capacity; return count.

        Only fully-refilled buckets go: for any other bucket the pending
        token deficit still shapes future ``try_take`` outcomes.
        """
        self._last_prune = now
        full = [
            ip
            for ip, bucket in self._buckets.items()
            if bucket.tokens + (now - bucket.last_refill) * bucket.rate
            >= bucket.capacity
        ]
        for ip in full:
            del self._buckets[ip]
        return len(full)

    def export_state(self) -> dict:
        """Bucket levels + prune clock, JSON-ready (see :mod:`repro.store`)."""
        return {
            "last_prune": self._last_prune,
            "buckets": {
                ip: {"tokens": bucket.tokens, "last_refill": bucket.last_refill}
                for ip, bucket in sorted(self._buckets.items())
            },
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        if "buckets" in state:
            entries = state["buckets"]
            self._last_prune = float(state["last_prune"])
        else:  # legacy flat {ip: {...}} schema, from before bucket pruning
            entries = state
            self._last_prune = self._clock.now()
        self._buckets = {
            ip: TokenBucket(
                self._rate,
                self._burst,
                tokens=float(entry["tokens"]),
                last_refill=float(entry["last_refill"]),
            )
            for ip, entry in entries.items()
        }


class FlakinessModel:
    """Injects transient 503s with a seeded RNG so crawls stay deterministic.

    Superseded as the front end's failure hook by the composable
    :class:`repro.faults.FaultSchedule` (the ``error_rate`` constructor
    knob now builds a :class:`repro.faults.BernoulliErrors` rule with
    identical draw behaviour); kept as a small standalone model for
    direct use.
    """

    def __init__(self, error_rate: float = 0.0, seed: int = 0):
        if not 0.0 <= error_rate < 1.0:
            raise ValueError("error_rate must be in [0, 1)")
        self._error_rate = error_rate
        self._rng = np.random.default_rng(seed)

    def should_fail(self) -> bool:
        if self._error_rate == 0.0:
            return False
        return bool(self._rng.random() < self._error_rate)

    def export_state(self) -> dict:
        """The RNG's bit-generator state, JSON-ready."""
        return copy.deepcopy(self._rng.bit_generator.state)

    def restore_state(self, state: Mapping[str, Any]) -> None:
        self._rng.bit_generator.state = copy.deepcopy(dict(state))


def _handler_accepts_viewer(handler) -> bool:
    """Whether a page handler takes a ``(path, viewer_id)`` pair.

    Decided once at construction from the signature so legacy one-
    argument handlers (plenty exist in tests) keep working unchanged,
    with no per-request ``TypeError`` probing.
    """
    try:
        signature = inspect.signature(handler)
    except (TypeError, ValueError):
        return False
    positional = 0
    for parameter in signature.parameters.values():
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            positional += 1
        elif parameter.kind is inspect.Parameter.VAR_POSITIONAL:
            return True
    return positional >= 2


class HttpFrontend:
    """Ties the rate limiter and fault schedule in front of a page handler.

    The handler is any callable mapping a path to ``(status, payload)``;
    :class:`repro.platform.service.GooglePlusService` provides one.  A
    handler whose signature accepts a second positional argument is
    called as ``handler(path, viewer_id)``, which is how logged-in
    clients get privacy-filtered pages; one-argument handlers keep the
    anonymous-only behaviour.

    ``faults`` is a :class:`repro.faults.FaultSchedule` of scripted
    failure windows; the legacy ``error_rate``/``seed`` pair still works
    and simply prepends an always-on Bernoulli 503 rule.
    """

    def __init__(
        self,
        handler,
        clock: SimulatedClock | None = None,
        rate_per_ip: float = 50.0,
        burst: float = 100.0,
        error_rate: float = 0.0,
        seed: int = 0,
        faults: FaultSchedule | None = None,
        registry: Registry | None = None,
    ):
        self._handler = handler
        self._pass_viewer = _handler_accepts_viewer(handler)
        self.clock = clock if clock is not None else SimulatedClock()
        self._limiter = RateLimiter(rate_per_ip, burst, self.clock)
        rules = list(faults.rules) if faults is not None else []
        if error_rate:
            rules.insert(0, BernoulliErrors(error_rate, seed=seed))
        self._faults = FaultSchedule(rules) if rules else None
        self.requests_served = 0
        self.requests_throttled = 0
        self.requests_failed = 0
        registry = registry if registry is not None else get_registry()
        self._m_requests = registry.counter(
            "http.requests", "Requests handled by the front end", labels=("status",)
        )
        self._m_throttle_wait = registry.histogram(
            "http.throttle_wait_seconds",
            "Retry-after advertised on rate-limiter rejections",
            buckets=log_buckets(0.001, 2.0, 16),
        )
        self._m_faults = registry.counter(
            "http.faults_injected",
            "Faults injected by the schedule, per rule kind",
            labels=("kind",),
        )
        # Materialise every status series up front so reports always carry
        # the full 200/403/404/408/429/503 breakdown, zeros included.
        for status in (
            STATUS_OK,
            STATUS_FORBIDDEN,
            STATUS_NOT_FOUND,
            STATUS_REQUEST_TIMEOUT,
            STATUS_TOO_MANY_REQUESTS,
            STATUS_SERVER_ERROR,
        ):
            self._m_requests.inc(0, status=status)

    @property
    def faults(self) -> FaultSchedule | None:
        """The active fault schedule (None when the transport is clean)."""
        return self._faults

    def export_state(self) -> dict:
        """Complete resumable transport state: clock, counters, limiter, RNG.

        Restoring this on a freshly built front end (same handler, same
        construction parameters) makes the remaining request sequence
        bit-identical to one that was never interrupted — the property
        :mod:`repro.store` checkpoints rely on.
        """
        return {
            "clock": self.clock.now(),
            "requests_served": self.requests_served,
            "requests_throttled": self.requests_throttled,
            "requests_failed": self.requests_failed,
            "limiter": self._limiter.export_state(),
            "faults": self._faults.export_state() if self._faults is not None else None,
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        self.clock.restore(float(state["clock"]))
        self.requests_served = int(state["requests_served"])
        self.requests_throttled = int(state["requests_throttled"])
        self.requests_failed = int(state["requests_failed"])
        self._limiter.restore_state(state["limiter"])
        faults_state = state.get("faults")
        if faults_state is not None:
            if self._faults is None:
                raise ValueError(
                    "checkpoint carries fault-schedule state but this front "
                    "end was built without a fault schedule"
                )
            self._faults.restore_state(faults_state)

    def handle(self, request: Request) -> Response:
        """Serve one request, applying throttling and fault injection."""
        granted, retry_after = self._limiter.admit(request.client_ip)
        if not granted:
            self.requests_throttled += 1
            self._m_requests.inc(status=STATUS_TOO_MANY_REQUESTS)
            self._m_throttle_wait.observe(retry_after)
            return Response(STATUS_TOO_MANY_REQUESTS, retry_after=retry_after)
        decision = (
            self._faults.evaluate(self.clock.now(), request.client_ip)
            if self._faults is not None
            else None
        )
        if decision is not None and decision.status is not None:
            self.requests_failed += 1
            self._m_requests.inc(status=decision.status)
            self._m_faults.inc(kind=decision.kind)
            return Response(decision.status, retry_after=decision.retry_after)
        if self._pass_viewer:
            status, payload = self._handler(request.path, request.viewer_id)
        else:
            status, payload = self._handler(request.path)
        slow_by = 0.0
        if decision is not None and status == STATUS_OK:
            slow_by = decision.slow_by
            if slow_by:
                self._m_faults.inc(kind="slow_responses")
            if decision.corrupt_mode is not None:
                payload = corrupt_payload(payload, decision.corrupt_mode)
                self._m_faults.inc(kind=decision.kind)
        self.requests_served += 1
        self._m_requests.inc(status=status)
        return Response(status, payload, slow_by=slow_by)
