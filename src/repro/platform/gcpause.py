"""Pause the cyclic garbage collector around bulk object construction.

The bulk ingestion and generation paths allocate millions of small
containers (dict entries, dataclass instances) in a tight window. Every
generation-0 threshold crossing triggers a collection whose cost grows
with the number of tracked objects already on the heap, so the amortized
GC tax on a bulk load is large — pausing collection for the duration and
letting the next natural collection sweep the survivors roughly halves
the cost of the profile builder at n=100k. None of the objects built
here form reference cycles, so deferring collection frees nothing late.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from typing import Iterator


@contextmanager
def gc_paused() -> Iterator[None]:
    """Disable cyclic GC for the duration; restore the previous state.

    Re-entrant: nested uses leave the collector disabled until the
    outermost block exits, and a caller that already disabled GC keeps
    it disabled afterwards.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
