"""Data model of Google+ user profiles.

A profile is a bag of typed field values, each carrying its own privacy
setting (:mod:`repro.platform.privacy`). Restricted fields use the enums
below, whose option lists mirror the paper exactly: the nine relationship
statuses of Table 3, the three gender buckets, and the occupation codes of
Table 5.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field as dataclass_field
from typing import Any

from .fields import COUNTABLE_FIELD_KEYS, FIELDS_BY_KEY
from .privacy import PUBLIC, FieldPrivacy


class Gender(enum.Enum):
    """Gender options of the restricted gender field."""

    MALE = "Male"
    FEMALE = "Female"
    OTHER = "Other"


class Relationship(enum.Enum):
    """The nine default relationship statuses (Table 3)."""

    SINGLE = "Single"
    MARRIED = "Married"
    IN_A_RELATIONSHIP = "In a relationship"
    ITS_COMPLICATED = "It's complicated"
    ENGAGED = "Engaged"
    OPEN_RELATIONSHIP = "In an open relationship"
    WIDOWED = "Widowed"
    DOMESTIC_PARTNERSHIP = "In a domestic partnership"
    CIVIL_UNION = "In a civil union"


class LookingFor(enum.Enum):
    """Options of the restricted "looking for" field."""

    FRIENDS = "Friends"
    DATING = "Dating"
    RELATIONSHIP = "A relationship"
    NETWORKING = "Networking"


class Occupation(enum.Enum):
    """Occupation-job title codes used by Table 5 of the paper."""

    COMEDIAN = "Co"
    MUSICIAN = "Mu"
    IT = "IT"
    BUSINESSMAN = "Bu"
    MODEL = "Mo"
    ACTOR = "Ac"
    SOCIALITE = "So"
    TV_HOST = "TV"
    JOURNALIST = "Jo"
    BLOGGER = "Bl"
    ECONOMIST = "Ec"
    ARTIST = "Ar"
    POLITICIAN = "Po"
    PHOTOGRAPHER = "Ph"
    WRITER = "Wr"
    ASTRONAUT = "As"
    ENGINEER = "En"
    STUDENT = "St"
    TEACHER = "Te"
    OTHER = "Ot"


#: Long-form label per occupation code, as footnoted under Table 5.
OCCUPATION_LABELS: dict[Occupation, str] = {
    Occupation.COMEDIAN: "Comedian",
    Occupation.MUSICIAN: "Musician",
    Occupation.IT: "Information Technology Person",
    Occupation.BUSINESSMAN: "Businessman",
    Occupation.MODEL: "Model",
    Occupation.ACTOR: "Actor",
    Occupation.SOCIALITE: "Socialite",
    Occupation.TV_HOST: "Television Host",
    Occupation.JOURNALIST: "Journalist",
    Occupation.BLOGGER: "Blogger",
    Occupation.ECONOMIST: "Economist",
    Occupation.ARTIST: "Artist",
    Occupation.POLITICIAN: "Politician",
    Occupation.PHOTOGRAPHER: "Photographer",
    Occupation.WRITER: "Writer",
    Occupation.ASTRONAUT: "Astronaut",
    Occupation.ENGINEER: "Engineer",
    Occupation.STUDENT: "Student",
    Occupation.TEACHER: "Teacher",
    Occupation.OTHER: "Other",
}


@dataclass(frozen=True)
class Place:
    """One entry of the "places lived" list.

    Google+ geocoded free-text place names onto the map; the simulator
    stores the resolved coordinates directly. The last entry of the list
    is taken as the user's current location (Section 4 of the paper).
    """

    name: str
    latitude: float
    longitude: float
    country: str  # ISO 3166-1 alpha-2 code

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError(f"latitude out of range: {self.latitude}")
        if not -180.0 <= self.longitude <= 180.0:
            raise ValueError(f"longitude out of range: {self.longitude}")


@dataclass(frozen=True)
class ContactInfo:
    """A work or home contact block; sharing a phone marks a tel-user."""

    phone: str | None = None
    email: str | None = None
    address: str | None = None

    def has_phone(self) -> bool:
        return bool(self.phone)


@dataclass
class FieldValue:
    """A profile field value together with its privacy setting."""

    value: Any
    privacy: FieldPrivacy = PUBLIC

    def is_public(self) -> bool:
        return self.privacy.is_public()


@dataclass
class UserProfile:
    """A Google+ user profile.

    Field values live in ``fields``, keyed by the machine names of
    :data:`repro.platform.fields.FIELD_SPECS`. The mandatory name field is
    stored as a plain attribute because it cannot be hidden or removed.
    ``lists_public`` models the per-user option to hide the "have user in
    circles" / "in user's circles" lists from the profile page.
    """

    user_id: int
    name: str
    fields: dict[str, FieldValue] = dataclass_field(default_factory=dict)
    lists_public: bool = True

    def __post_init__(self) -> None:
        for key in self.fields:
            if key not in FIELDS_BY_KEY or key == "name":
                raise ValueError(f"unknown profile field: {key!r}")

    def set_field(self, key: str, value: Any, privacy: FieldPrivacy = PUBLIC) -> None:
        """Set or replace an optional field."""
        if key not in FIELDS_BY_KEY or key == "name":
            raise ValueError(f"unknown profile field: {key!r}")
        self.fields[key] = FieldValue(value, privacy)

    def get_public(self, key: str) -> Any | None:
        """Return the value of a field if publicly visible, else None."""
        if key == "name":
            return self.name
        entry = self.fields.get(key)
        if entry is not None and entry.is_public():
            return entry.value
        return None

    def public_field_keys(self) -> list[str]:
        """Keys of all publicly visible fields, the mandatory name included."""
        keys = ["name"]
        keys.extend(k for k, v in self.fields.items() if v.is_public())
        return keys

    def count_public_fields(self, include_contacts: bool = False) -> int:
        """Number of publicly shared fields.

        Figures 2 and 8 of the paper count shared fields *excluding* the
        work/home contact blocks; pass ``include_contacts=True`` to count
        all seventeen attributes instead.
        """
        keys = self.public_field_keys()
        if include_contacts:
            return len(keys)
        countable = set(COUNTABLE_FIELD_KEYS)
        return sum(1 for k in keys if k in countable)

    def shares_phone_publicly(self) -> bool:
        """True when a public work or home contact block carries a phone.

        These are the paper's "tel-users" (Section 3.2).
        """
        for key in ("work_contact", "home_contact"):
            value = self.get_public(key)
            if isinstance(value, ContactInfo) and value.has_phone():
                return True
        return False

    def current_place(self) -> Place | None:
        """Last publicly listed place lived, i.e. the current location."""
        places = self.get_public("places_lived")
        if places:
            return places[-1]
        return None
