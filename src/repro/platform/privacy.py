"""Per-field visibility model of Google+ profiles.

Google+ let a user pick, for every profile field except the mandatory
name, one of five visibility levels (Section 3.1 of the paper):

1. ``PUBLIC`` — anyone on the Internet,
2. ``EXTENDED_CIRCLES`` — people in circles and the circles of those,
3. ``YOUR_CIRCLES`` — people in the owner's circles,
4. ``ONLY_YOU`` — the owner alone,
5. ``CUSTOM`` — an explicit set of circles.

The crawler in this reproduction is an anonymous HTTP client, so only
``PUBLIC`` fields are harvested — exactly the situation the authors faced.
The richer levels still matter: the platform enforces them whenever a
profile is viewed *as* another user, and tests exercise those paths.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Visibility(enum.Enum):
    """The five visibility levels of a Google+ profile field."""

    PUBLIC = "public"
    EXTENDED_CIRCLES = "extended circles"
    YOUR_CIRCLES = "your circles"
    ONLY_YOU = "only you"
    CUSTOM = "custom"


@dataclass(frozen=True)
class FieldPrivacy:
    """Visibility setting attached to one profile field.

    ``custom_circles`` is only meaningful when ``visibility`` is
    :attr:`Visibility.CUSTOM`; it names the owner's circles whose members
    may view the field.
    """

    visibility: Visibility = Visibility.PUBLIC
    custom_circles: frozenset[str] = field(default_factory=frozenset)

    def is_public(self) -> bool:
        """True when any anonymous visitor may view the field."""
        return self.visibility is Visibility.PUBLIC


PUBLIC = FieldPrivacy(Visibility.PUBLIC)
ONLY_YOU = FieldPrivacy(Visibility.ONLY_YOU)
YOUR_CIRCLES = FieldPrivacy(Visibility.YOUR_CIRCLES)
EXTENDED_CIRCLES = FieldPrivacy(Visibility.EXTENDED_CIRCLES)


def custom(*circles: str) -> FieldPrivacy:
    """Build a CUSTOM privacy setting restricted to the given circles."""
    return FieldPrivacy(Visibility.CUSTOM, frozenset(circles))
