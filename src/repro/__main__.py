"""``python -m repro`` — regenerate the paper's artifacts (alias for
``python -m repro.experiments``)."""

from .experiments.runner import main

raise SystemExit(main())
