"""Shared fixtures.

Expensive artifacts (world, crawl, full study) are session-scoped: the
whole suite shares one small world and one full study run, while tests
needing mutation build their own tiny worlds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MeasurementStudy, StudyConfig, StudyResults
from repro.crawler import BidirectionalBFSCrawler, CrawlConfig, CrawlDataset
from repro.synth import build_world, SyntheticWorld, WorldConfig

#: Seeds/sizes used by the shared fixtures (also referenced in tests).
SMALL_WORLD_USERS = 2_500
SMALL_WORLD_SEED = 13
STUDY_USERS = 4_000
STUDY_SEED = 7


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_world() -> SyntheticWorld:
    """A compact world shared by read-only tests."""
    return build_world(WorldConfig(n_users=SMALL_WORLD_USERS, seed=SMALL_WORLD_SEED))


@pytest.fixture(scope="session")
def small_crawl(small_world: SyntheticWorld) -> CrawlDataset:
    """A complete (100%-coverage) crawl of the small world."""
    crawler = BidirectionalBFSCrawler(
        small_world.frontend(), CrawlConfig(n_machines=4)
    )
    return crawler.crawl([small_world.seed_user_id()])


@pytest.fixture(scope="session")
def study_results() -> StudyResults:
    """One full measurement study shared by the analysis-layer tests."""
    config = StudyConfig(
        n_users=STUDY_USERS,
        seed=STUDY_SEED,
        path_sample_start=200,
        path_sample_max=600,
        path_mile_pairs=40_000,
    )
    return MeasurementStudy(config).run()
