"""Tests for text table/plot rendering."""

import numpy as np
import pytest

from repro.experiments.render import (
    AsciiPlot,
    format_number,
    format_table,
    log_bins,
    percent,
    render_ccdf_plot,
)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["A", "Longer"], [["x", "y"], ["zz", "w"]])
        lines = text.split("\n")
        assert len(lines) == 4
        assert lines[0].startswith("A ")
        assert all(len(line) >= 5 for line in lines)

    def test_title(self):
        text = format_table(["A"], [["1"]], title="My table")
        assert text.startswith("My table\n")

    def test_non_string_cells(self):
        text = format_table(["n"], [[42], [3.5]])
        assert "42" in text and "3.5" in text


class TestPercent:
    def test_basic(self):
        assert percent(0.5) == "50.00%"
        assert percent(0.123456, digits=1) == "12.3%"

    def test_nan(self):
        assert percent(float("nan")) == "n/a"


class TestFormatNumber:
    def test_thousands_separator(self):
        assert format_number(575141097) == "575,141,097"

    def test_float(self):
        assert format_number(3.14159) == "3.14"

    def test_nan(self):
        assert format_number(float("nan")) == "n/a"


class TestAsciiPlot:
    def test_renders_grid(self):
        plot = AsciiPlot(width=20, height=5, title="T")
        plot.add_series([1, 2, 3], [1, 2, 3], "*", "s")
        text = plot.render()
        lines = text.split("\n")
        assert lines[0] == "T"
        assert "*" in text
        assert "*=s" in text

    def test_empty_plot(self):
        plot = AsciiPlot(title="empty")
        assert "(no data)" in plot.render()

    def test_log_axes_filter_nonpositive(self):
        plot = AsciiPlot(x_log=True, y_log=True)
        plot.add_series([0, 1, 10], [0.5, 0.1, 0.0], "x")
        text = plot.render()  # must not raise on zeros
        assert "x" in text

    def test_ccdf_helper(self):
        text = render_ccdf_plot(
            [(np.array([1, 10, 100]), np.array([1.0, 0.1, 0.01]), "o", "curve")],
            title="C",
        )
        assert text.startswith("C")
        assert "o=curve" in text

    def test_constant_series_no_zero_division(self):
        plot = AsciiPlot()
        plot.add_series([5, 5], [1, 1], "#")
        plot.render()


class TestLogBins:
    def test_covers_range(self):
        bins = log_bins(np.array([1.0, 1000.0]), n_bins=10)
        assert bins[0] == pytest.approx(1.0)
        assert bins[-1] == pytest.approx(1000.0)
        assert len(bins) == 10

    def test_degenerate_sample(self):
        bins = log_bins(np.array([5.0]))
        assert bins[0] < bins[-1]

    def test_empty_sample(self):
        bins = log_bins(np.array([]))
        assert len(bins) == 2
