"""Tests for artifact saving."""

from repro.experiments.runner import save_artifacts


class TestSaveArtifacts:
    def test_writes_selected(self, study_results, tmp_path):
        written = save_artifacts(study_results, tmp_path, ["table2", "fig6"])
        assert {p.name for p in written} == {"table2.txt", "fig6.txt"}
        content = (tmp_path / "table2.txt").read_text()
        assert "Public attributes" in content

    def test_writes_all_by_default(self, study_results, tmp_path):
        written = save_artifacts(study_results, tmp_path)
        assert len(written) == 20

    def test_creates_directory(self, study_results, tmp_path):
        target = tmp_path / "deep" / "dir"
        save_artifacts(study_results, target, ["fig3"])
        assert (target / "fig3.txt").exists()
