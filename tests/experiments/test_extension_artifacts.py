"""Tests for the extension experiments (growth/diffusion/implications)."""

import dataclasses

from repro.experiments.registry import EXPERIMENTS


class TestExtensionRenderers:
    def test_growth_renders_with_world(self, study_results):
        text = EXPERIMENTS["ext_growth"].render(study_results)
        assert "densification exponent" in text
        assert "tipping point" in text

    def test_diffusion_renders_with_world(self, study_results):
        text = EXPERIMENTS["ext_diffusion"].render(study_results)
        assert "public posts reach" in text
        assert "Posting culture" in text or "posting culture" in text

    def test_implications_renders(self, study_results):
        text = EXPERIMENTS["ext_implications"].render(study_results)
        assert "Section 6" in text
        assert "political campaigns viable" in text

    def test_world_dependent_renderers_degrade_gracefully(self, study_results):
        """A StudyResults built from a foreign dataset has no world."""
        detached = dataclasses.replace(study_results, extras={})
        assert "not available" in EXPERIMENTS["ext_growth"].render(detached)
        assert "not available" in EXPERIMENTS["ext_diffusion"].render(detached)
        # Implications only need measured artifacts, so they still work.
        assert "Section 6" in EXPERIMENTS["ext_implications"].render(detached)
