"""Tests for the experiment registry and runner."""

import pytest

from repro.experiments.registry import EXPERIMENTS
from repro.experiments.runner import render_comparison_table, run_experiments

EXPECTED_IDS = {
    "table1", "table2", "table3", "table4", "table5",
    "fig2", "fig3", "fig4a", "fig4b", "fig4c", "fig5",
    "fig6", "fig7", "fig8", "fig9", "fig10", "methodology",
    "ext_growth", "ext_diffusion", "ext_implications",
}


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        assert set(EXPERIMENTS) == EXPECTED_IDS

    def test_metadata_populated(self):
        for experiment in EXPERIMENTS.values():
            assert experiment.title
            assert experiment.section

    @pytest.mark.parametrize("artifact_id", sorted(EXPECTED_IDS))
    def test_renderers_produce_text(self, study_results, artifact_id):
        text = EXPERIMENTS[artifact_id].render(study_results)
        assert isinstance(text, str)
        assert len(text) > 50

    def test_table1_mentions_larry_page(self, study_results):
        assert "Larry Page" in EXPERIMENTS["table1"].render(study_results)

    def test_table4_quotes_other_networks(self, study_results):
        text = EXPERIMENTS["table4"].render(study_results)
        for network in ("Facebook", "Twitter", "Orkut"):
            assert network in text

    def test_fig3_reports_alphas(self, study_results):
        text = EXPERIMENTS["fig3"].render(study_results)
        assert "alpha_in" in text and "alpha_out" in text

    def test_methodology_reports_lost_edges(self, study_results):
        text = EXPERIMENTS["methodology"].render(study_results)
        assert "lost-edge fraction" in text


class TestRunner:
    def test_run_all(self, study_results):
        rendered = run_experiments(study_results)
        assert set(rendered) == EXPECTED_IDS

    def test_run_selection(self, study_results):
        rendered = run_experiments(study_results, ["table1", "fig6"])
        assert set(rendered) == {"table1", "fig6"}

    def test_unknown_artifact_rejected(self, study_results):
        with pytest.raises(KeyError):
            run_experiments(study_results, ["fig99"])

    def test_comparison_table(self, study_results):
        text = render_comparison_table(study_results)
        assert "Paper vs measured" in text
        assert "Table 4" in text
