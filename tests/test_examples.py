"""Smoke tests: every shipped example runs end to end on a small world."""

import subprocess
import sys
from pathlib import Path

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "1500", "3")
        assert "Table 1" in out or "Who is popular" in out
        assert "reciprocity" in out

    def test_privacy_study(self):
        out = run_example("privacy_study.py", "1500", "3")
        assert "Table 2" in out
        assert "Telephone users" in out or "tel-users" in out

    def test_geo_adoption(self):
        out = run_example("geo_adoption.py", "1500", "3")
        assert "Figure 6" in out
        assert "Recommendation-system hint" in out

    def test_crawl_campaign(self):
        out = run_example("crawl_campaign.py", "--users", "1200", "--seed", "3")
        assert "edge recall" in out
        assert "archived and reloaded" in out

    def test_crawl_campaign_durable_crash_and_resume(self, tmp_path):
        camp = str(tmp_path / "camp")
        args = ("--users", "1200", "--seed", "3", "--campaign-dir", camp)
        out = run_example("crawl_campaign.py", *args, "--crash-after", "400")
        assert "crashed on purpose" in out
        assert "checkpoints" in out
        out = run_example("crawl_campaign.py", *args, "--resume")
        assert "campaign complete" in out
        assert "archive verified" in out

    def test_network_growth(self):
        out = run_example("network_growth.py", "1500", "3")
        assert "densification exponent" in out
        assert "tipping point" in out

    def test_content_diffusion(self):
        out = run_example("content_diffusion.py", "1500", "3")
        assert "walled-garden penalty" in out
        assert "Posting culture" in out

    def test_chaos_crawl(self):
        out = run_example("chaos_crawl.py", "--users", "1500", "--seed", "3")
        assert "chaos crawl" in out
        assert "recovered the identical graph" in out

    def test_traffic_storm(self, tmp_path):
        out = run_example(
            "traffic_storm.py", "--users", "1200", "--clients", "60",
            "--seed", "3", "--dir", str(tmp_path),
        )
        assert "clients + crawl fleet" in out
        assert "availability" in out
        assert "page cache" in out
        assert "trace digest: " in out
        assert "crawl status: COMPLETE" in out

    def test_market_strategies(self):
        out = run_example("market_strategies.py", "1500", "3")
        assert "product strategy" in out
        assert "Political campaigning viable in" in out

    def test_live_dashboard(self):
        out = run_example(
            "live_dashboard.py", "--users", "1500", "--seed", "3",
            "--crash-after", "600",
        )
        assert "figure trajectory" in out
        assert "crawl status: COMPLETE" in out
        assert "crashed on purpose" in out
        assert "bit-equal to the batch pipeline" in out
        assert "resumed to completion" in out

    def test_big_world(self):
        out = run_example("big_world.py", "15000", "3")
        assert "fast engine" in out
        assert "reciprocity" in out
        assert "seed user for a crawl" in out


class TestExperimentsCLI:
    def test_module_cli(self):
        result = subprocess.run(
            [
                sys.executable, "-m", "repro.experiments",
                "--users", "1500", "--seed", "3", "table2", "fig6",
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert "table2" in result.stdout
        assert "fig6" in result.stdout

    def test_unknown_artifact_fails_cleanly(self):
        result = subprocess.run(
            [
                sys.executable, "-m", "repro.experiments",
                "--users", "1500", "nope",
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode != 0
