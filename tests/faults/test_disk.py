"""Disk-fault rules, schedules, and the FaultyStoreIO injection seam."""

from __future__ import annotations

import errno

import pytest

from repro.faults.disk import (
    BitRot,
    DiskFaultError,
    DiskFaultSchedule,
    DroppedFsync,
    Enospc,
    FaultyStoreIO,
    MissingFile,
    TornWrite,
)
from repro.faults.schedule import FaultSpecError
from repro.faults.scenarios import (
    DISK_SCENARIOS,
    disk_scenario_names,
    get_disk_scenario,
)
from repro.obs.metrics import Registry
from repro.store.atomio import publish_bytes
from repro.store.segments import SegmentError, read_segment, write_segment


def make_io(spec: dict, now: float = 1.0) -> FaultyStoreIO:
    io = FaultyStoreIO(DiskFaultSchedule.from_dict(spec), registry=Registry())
    io.bind_clock(lambda: now)
    return io


class TestSchema:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown disk fault kind"):
            DiskFaultSchedule.from_dict({"rules": [{"kind": "gremlins"}]})

    def test_unknown_parameter_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown parameters"):
            DiskFaultSchedule.from_dict(
                {"rules": [{"kind": "torn_write", "color": "red"}]}
            )

    def test_bad_rate_rejected(self):
        with pytest.raises(FaultSpecError, match="must be in"):
            DiskFaultSchedule.from_dict({"rules": [{"kind": "eio", "rate": 1.5}]})

    def test_bad_window_rejected(self):
        with pytest.raises(FaultSpecError, match="before start"):
            DiskFaultSchedule.from_dict(
                {"rules": [{"kind": "eio", "start": 2.0, "end": 1.0}]}
            )

    def test_bad_target_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown targets"):
            DiskFaultSchedule.from_dict(
                {"rules": [{"kind": "bit_rot", "targets": ["floppy"]}]}
            )

    def test_bad_zone_rejected(self):
        with pytest.raises(FaultSpecError, match="zone"):
            DiskFaultSchedule.from_dict(
                {"rules": [{"kind": "bit_rot", "zone": [0.9, 0.2]}]}
            )

    def test_rules_list_required(self):
        with pytest.raises(FaultSpecError, match="rules"):
            DiskFaultSchedule.from_dict({"seed": 3})

    def test_named_scenarios_all_validate(self):
        for name in disk_scenario_names():
            schedule = DiskFaultSchedule.from_dict(get_disk_scenario(name))
            assert len(schedule) == len(DISK_SCENARIOS[name]["rules"])

    def test_unknown_scenario_name(self):
        with pytest.raises(FaultSpecError, match="unknown disk scenario"):
            get_disk_scenario("raid-of-doom")


class TestDeterminism:
    SPEC = {
        "seed": 5,
        "rules": [
            {"kind": "torn_write", "rate": 0.3},
            {"kind": "eio", "rate": 0.2},
            {"kind": "dropped_fsync", "rate": 0.4},
        ],
    }

    @staticmethod
    def _trace(schedule: DiskFaultSchedule, n: int = 64) -> list[tuple]:
        out = []
        for i in range(n):
            for op in ("write", "fsync"):
                decisions = schedule.decide(op, now=1.0 + i * 0.01)
                out.append(tuple(d.kind for d in decisions))
        return out

    def test_same_spec_same_decisions(self):
        a = DiskFaultSchedule.from_dict(self.SPEC)
        b = DiskFaultSchedule.from_dict(self.SPEC)
        assert self._trace(a) == self._trace(b)

    def test_different_seed_diverges(self):
        a = DiskFaultSchedule.from_dict(self.SPEC)
        b = DiskFaultSchedule.from_dict({**self.SPEC, "seed": 6})
        assert self._trace(a) != self._trace(b)

    def test_state_roundtrip_resumes_exactly(self):
        a = DiskFaultSchedule.from_dict(self.SPEC)
        self._trace(a, 16)  # advance
        state = a.export_state()
        tail_a = self._trace(a, 32)
        b = DiskFaultSchedule.from_dict(self.SPEC)
        b.restore_state(state)
        assert self._trace(b, 32) == tail_a

    def test_restore_rejects_wrong_shape(self):
        a = DiskFaultSchedule.from_dict(self.SPEC)
        with pytest.raises(FaultSpecError, match="state covers"):
            a.restore_state({"rules": [{}]})

    def test_draws_independent_of_outcome(self):
        # A rule draws the same variate count whether or not it fires,
        # so *observing* ops never perturbs the fault timeline.
        tw = TornWrite(rate=0.0, seed=1)
        miss = TornWrite(rate=0.0, seed=1)
        hit = TornWrite(rate=1.0, seed=1)
        assert miss.decide("write", 0.0, "file") is None
        assert hit.decide("write", 0.0, "file") is not None
        # After one decide each, both RNGs sit at the same position.
        assert (
            miss._rng.bit_generator.state["state"]
            == hit._rng.bit_generator.state["state"]
        )
        del tw

    def test_window_envelope_fast_path(self):
        schedule = DiskFaultSchedule.from_dict(
            {"rules": [{"kind": "eio", "start": 5.0, "end": 6.0, "rate": 1.0}]}
        )
        assert schedule.decide("write", 0.0) == []
        assert schedule.decide("write", 99.0) == []
        assert schedule.decide("write", 5.5) != []


class TestRuleBehaviors:
    def test_torn_write_keeps_prefix_and_raises(self, tmp_path):
        io = make_io({"rules": [{"kind": "torn_write", "rate": 1.0}]})
        path = tmp_path / "f"
        with open(path, "wb") as handle:
            with pytest.raises(DiskFaultError) as err:
                io.write(handle, b"0123456789")
        assert err.value.kind == "torn_write"
        # A strict prefix: at least 0, at most len-1 bytes landed.
        assert 0 <= path.stat().st_size < 10

    def test_enospc_and_eio_raise_with_errno(self, tmp_path):
        io = make_io({"rules": [{"kind": "enospc", "rate": 1.0}]})
        with open(tmp_path / "f", "wb") as handle:
            with pytest.raises(DiskFaultError) as err:
                io.write(handle, b"data")
        assert err.value.errno == errno.ENOSPC

        io = make_io({"rules": [{"kind": "eio", "rate": 1.0}]})
        with open(tmp_path / "g", "wb") as handle:
            with pytest.raises(DiskFaultError) as err:
                io.fsync(handle)
        assert err.value.errno == errno.EIO

    def test_dropped_fsync_then_replace_truncates_tail(self, tmp_path):
        io = make_io({"rules": [{"kind": "dropped_fsync", "rate": 1.0}]})
        src = tmp_path / "doc.tmp"
        dst = tmp_path / "doc"
        with open(src, "wb") as handle:
            io.write(handle, b"A" * 100)
            handle.flush()
            io.fsync(handle)  # lies
        io.replace(src, dst)
        # The rename landed but the never-synced tail did not.
        assert dst.exists()
        assert dst.stat().st_size < 100

    def test_honest_fsync_clears_the_debt(self, tmp_path):
        # fsync lies only inside the window; a later honest fsync makes
        # the file whole again before it is published.
        spec = {"rules": [{"kind": "dropped_fsync", "start": 0.0, "end": 2.0,
                           "rate": 1.0}]}
        io = make_io(spec, now=1.0)
        src = tmp_path / "doc.tmp"
        with open(src, "wb") as handle:
            io.write(handle, b"A" * 100)
            io.fsync(handle)  # dropped (t=1.0 inside window)
            io.bind_clock(lambda: 5.0)  # window over
            io.fsync(handle)  # honest
        io.replace(src, tmp_path / "doc")
        assert (tmp_path / "doc").stat().st_size == 100

    def test_bit_rot_flips_one_bit_in_segment(self, tmp_path):
        import numpy as np

        path = tmp_path / "seg-000001.edges"
        write_segment(path, np.arange(50), np.arange(50))
        pristine = path.read_bytes()
        io = make_io({"rules": [{"kind": "bit_rot", "rate": 1.0,
                                 "targets": ["segment"]}]})
        io.published(path, kind="segment")
        rotted = path.read_bytes()
        assert rotted != pristine
        assert len(rotted) == len(pristine)
        diff = [i for i, (a, b) in enumerate(zip(pristine, rotted)) if a != b]
        assert len(diff) == 1
        assert bin(pristine[diff[0]] ^ rotted[diff[0]]).count("1") == 1
        with pytest.raises(SegmentError):
            read_segment(path)

    def test_bit_rot_ignores_other_targets(self, tmp_path):
        path = tmp_path / "ckpt-000001.json"
        path.write_bytes(b"{}")
        io = make_io({"rules": [{"kind": "bit_rot", "rate": 1.0,
                                 "targets": ["segment"]}]})
        io.published(path, kind="checkpoint")
        assert path.read_bytes() == b"{}"

    def test_missing_file_unlinks_checkpoint(self, tmp_path):
        io = make_io({"rules": [{"kind": "missing_file", "rate": 1.0}]})
        path = tmp_path / "ckpt-000001.json"
        path.write_bytes(b"{}")
        io.published(path, kind="checkpoint")
        assert not path.exists()

    def test_duplicate_segment_clones_to_next_name(self, tmp_path):
        import numpy as np

        path = tmp_path / "seg-000003.edges"
        write_segment(path, np.arange(10), np.arange(10))
        io = make_io({"rules": [{"kind": "duplicate_segment", "rate": 1.0}]})
        io.published(path, kind="segment")
        clone = tmp_path / "seg-000004.edges"
        assert clone.exists()
        assert clone.read_bytes() == path.read_bytes()

    def test_journal_flushed_rot_spares_the_new_batch(self, tmp_path):
        from repro.store.journal import HEADER_SIZE, JournalWriter

        spec = {"rules": [{"kind": "bit_rot", "rate": 1.0,
                           "targets": ["journal"]}]}
        io = make_io(spec)
        journal = JournalWriter(tmp_path / "j.wal", io=io)
        journal.append(1, b"first-batch-record")
        journal.flush()  # durable_end == HEADER_SIZE: nothing to rot yet
        first_batch = (tmp_path / "j.wal").read_bytes()
        journal.append(1, b"second-batch-record")
        journal.flush()  # rot lands somewhere in the first batch
        journal.close()
        now = (tmp_path / "j.wal").read_bytes()
        # Exactly one bit differs, and it differs inside batch one.
        diff = [
            i
            for i, (a, b) in enumerate(zip(first_batch, now[: len(first_batch)]))
            if a != b
        ]
        assert len(diff) == 1
        assert HEADER_SIZE <= diff[0] < len(first_batch)

    def test_journal_flushed_unlink(self, tmp_path):
        from repro.store.journal import JournalWriter

        spec = {"rules": [{"kind": "missing_file", "rate": 1.0,
                           "targets": ["journal"]}]}
        io = make_io(spec)
        journal = JournalWriter(tmp_path / "j.wal", io=io)
        journal.append(1, b"record")
        journal.flush()
        assert not (tmp_path / "j.wal").exists()

    def test_metrics_count_injections(self, tmp_path):
        registry = Registry()
        io = FaultyStoreIO(
            DiskFaultSchedule.from_dict(
                {"rules": [{"kind": "missing_file", "rate": 1.0}]}
            ),
            registry=registry,
        )
        io.bind_clock(lambda: 1.0)
        path = tmp_path / "ckpt-000001.json"
        path.write_bytes(b"{}")
        io.published(path, kind="checkpoint")
        counter = registry.counter(
            "store.disk_faults_injected", "Disk faults injected, by rule kind",
            labels=("kind",),
        )
        assert counter.value(kind="missing_file") == 1


class TestUnarmedOverheadPath:
    def test_quiet_schedule_decides_nothing(self):
        spec = {"rules": [{"kind": "eio", "start": 1e9, "end": 2e9, "rate": 1.0}]}
        schedule = DiskFaultSchedule.from_dict(spec)
        assert schedule.decide("write", 0.5) == []

    def test_faulty_io_with_quiet_schedule_behaves_normally(self, tmp_path):
        spec = {"rules": [{"kind": "eio", "start": 1e9, "end": 2e9, "rate": 1.0}]}
        io = make_io(spec, now=1.0)
        target = tmp_path / "file"
        publish_bytes(target, b"payload", kind="checkpoint", io=io)
        assert target.read_bytes() == b"payload"


def test_rule_constructors_validate():
    with pytest.raises(FaultSpecError):
        TornWrite(rate=-0.1)
    with pytest.raises(FaultSpecError):
        Enospc(start=3.0, end=1.0)
    with pytest.raises(FaultSpecError):
        BitRot(zone=(0.5, 0.5))
    with pytest.raises(FaultSpecError):
        MissingFile(targets=["tape"])
    DroppedFsync(rate=1.0)  # valid
