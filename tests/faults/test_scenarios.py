"""The named scenarios must stay loadable, valid, and deterministic."""

import json

import pytest

from repro.faults import (
    FaultSchedule,
    FaultSpecError,
    SCENARIOS,
    get_scenario,
    load_scenario_file,
    scenario_names,
)


class TestCatalog:
    def test_names_sorted_and_nonempty(self):
        names = scenario_names()
        assert names == sorted(names)
        assert "flaky-fleet" in names
        assert "kitchen-sink" in names

    def test_every_scenario_builds(self):
        for name in scenario_names():
            schedule = FaultSchedule.from_dict(get_scenario(name))
            assert len(schedule) >= 1

    def test_every_scenario_is_json_round_trippable(self):
        # Scenarios are data: they must survive the JSON round trip a
        # --scenario-file or a campaign manifest puts them through.
        for name, spec in SCENARIOS.items():
            assert json.loads(json.dumps(spec)) == spec, name

    def test_every_scenario_has_a_description(self):
        for name in scenario_names():
            assert get_scenario(name).get("description"), name

    def test_unknown_scenario_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown scenario"):
            get_scenario("does-not-exist")


class TestScenarioFiles:
    def test_load_valid_file(self, tmp_path):
        path = tmp_path / "my.json"
        path.write_text(json.dumps(get_scenario("rolling-outage")))
        spec = load_scenario_file(path)
        assert len(FaultSchedule.from_dict(spec)) >= 1

    def test_unreadable_file_rejected(self, tmp_path):
        with pytest.raises(FaultSpecError, match="unreadable"):
            load_scenario_file(tmp_path / "missing.json")

    def test_non_object_document_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(FaultSpecError, match="JSON object"):
            load_scenario_file(path)

    def test_invalid_rules_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"rules": [{"kind": "gremlins"}]}))
        with pytest.raises(FaultSpecError, match="unknown kind"):
            load_scenario_file(path)
