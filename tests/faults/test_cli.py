"""Smoke tests for the ``python -m repro.faults`` chaos CLI."""

import json
import subprocess
import sys

from repro.obs import validate_run_report


def run_cli(*args: str, check: bool = True) -> subprocess.CompletedProcess:
    result = subprocess.run(
        [sys.executable, "-m", "repro.faults", *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    if check:
        assert result.returncode == 0, result.stderr[-2000:]
    return result


class TestChaosCLI:
    def test_list_names_every_scenario(self):
        out = run_cli("--list").stdout
        for name in ("flaky-fleet", "ban-hammer", "rolling-outage",
                     "dirty-pages", "kitchen-sink"):
            assert name in out

    def test_scenario_runs_end_to_end(self, tmp_path):
        report_path = tmp_path / "run_report.json"
        result = run_cli(
            "--scenario", "flaky-fleet",
            "--users", "1500",
            "--dir", str(tmp_path / "camp"),
            "--report", str(report_path),
        )
        assert "crawl survived" in result.stdout
        assert "chaos absorbed" in result.stdout
        report = json.loads(report_path.read_text())
        assert validate_run_report(report) == []
        assert report["kind"] == "chaos"
        coverage = report["coverage"]
        assert coverage["completed"] is True
        assert coverage["pages"] == 1500
        assert coverage["server_errors"] > 0
        assert coverage["redriven"] >= 1
        assert coverage["dead_letter_lost_fraction"] == 0.0

    def test_scenario_file(self, tmp_path):
        spec = {
            "seed": 3,
            "rules": [
                {"kind": "outage", "start": 0.5, "end": 0.8, "retry_after": 0.1}
            ],
        }
        path = tmp_path / "my.json"
        path.write_text(json.dumps(spec))
        result = run_cli(
            "--scenario-file", str(path),
            "--users", "1500",
            "--dir", str(tmp_path / "camp"),
            "--report", str(tmp_path / "run_report.json"),
        )
        assert "crawl survived" in result.stdout

    def test_no_source_is_an_error(self):
        result = run_cli(check=False)
        assert result.returncode == 2
