"""Unit tests for the fault rules and their composition."""

import pytest

from repro.faults import (
    BernoulliErrors,
    CORRUPTION_MODES,
    CorruptPages,
    ErrorBurst,
    FaultSchedule,
    FaultSpecError,
    IpBan,
    Outage,
    SlowResponses,
    STATUS_FORBIDDEN,
    STATUS_REQUEST_TIMEOUT,
    STATUS_SERVER_ERROR,
    Timeouts,
    corrupt_payload,
)
from repro.platform.pages import CircleListView, ProfilePage


def profile_page() -> ProfilePage:
    return ProfilePage(
        user_id=7,
        name="Ada",
        fields={"occupation": "Engineer"},
        in_list=CircleListView((1, 2), 2),
        out_list=CircleListView((3,), 5),
    )


class TestWindows:
    def test_rule_inactive_outside_window(self):
        ban = IpBan(start=1.0, end=2.0)
        assert ban.decide(0.5, "10.0.0.1") is None
        assert ban.decide(2.0, "10.0.0.1") is None  # end is exclusive
        assert ban.decide(1.0, "10.0.0.1") is not None  # start is inclusive

    def test_inverted_window_rejected(self):
        with pytest.raises(FaultSpecError, match="before start"):
            IpBan(start=2.0, end=1.0)

    def test_rate_out_of_unit_rejected(self):
        with pytest.raises(FaultSpecError, match=r"\[0, 1\]"):
            ErrorBurst(rate=1.5)


class TestRuleDecisions:
    def test_error_burst_emits_503(self):
        burst = ErrorBurst(start=0.0, end=10.0, rate=1.0, retry_after=0.25, seed=1)
        decision = burst.decide(5.0, "10.0.0.1")
        assert decision.status == STATUS_SERVER_ERROR
        assert decision.retry_after == 0.25

    def test_error_burst_rate_is_probabilistic(self):
        burst = ErrorBurst(start=0.0, end=10.0, rate=0.5, seed=3)
        hits = sum(burst.decide(1.0, "ip") is not None for _ in range(400))
        assert 120 < hits < 280

    def test_bernoulli_errors_always_on(self):
        flake = BernoulliErrors(rate=1.0, seed=0)
        assert flake.decide(0.0, "ip").status == STATUS_SERVER_ERROR
        assert flake.decide(1e9, "ip").status == STATUS_SERVER_ERROR

    def test_ip_ban_targets_listed_ips_only(self):
        ban = IpBan(start=0.0, end=1.0, ips=["10.0.0.2"])
        assert ban.decide(0.5, "10.0.0.2").status == STATUS_FORBIDDEN
        assert ban.decide(0.5, "10.0.0.3") is None

    def test_ip_ban_without_ips_bans_everyone(self):
        ban = IpBan(start=0.0, end=1.0)
        assert ban.decide(0.5, "anything").status == STATUS_FORBIDDEN

    def test_outage_retry_after_capped_by_window(self):
        outage = Outage(start=0.0, end=1.0, retry_after=5.0)
        decision = outage.decide(0.8, "ip")
        assert decision.status == STATUS_SERVER_ERROR
        assert decision.retry_after == pytest.approx(0.2)

    def test_timeouts_emit_408_costing_the_timeout(self):
        rule = Timeouts(start=0.0, end=1.0, rate=1.0, timeout=0.5, seed=0)
        decision = rule.decide(0.5, "ip")
        assert decision.status == STATUS_REQUEST_TIMEOUT
        assert decision.retry_after == 0.5

    def test_slow_responses_add_latency_not_status(self):
        rule = SlowResponses(start=0.0, end=1.0, rate=1.0, extra_latency=0.3, seed=0)
        decision = rule.decide(0.5, "ip")
        assert decision.status is None
        assert decision.slow_by == 0.3

    def test_corrupt_pages_picks_a_known_mode(self):
        rule = CorruptPages(start=0.0, end=1.0, rate=1.0, seed=5)
        modes = {rule.decide(0.5, "ip").corrupt_mode for _ in range(50)}
        assert modes <= set(CORRUPTION_MODES)
        assert len(modes) > 1  # the mode draw actually varies

    def test_corrupt_pages_rejects_unknown_modes(self):
        with pytest.raises(FaultSpecError, match="unknown corruption modes"):
            CorruptPages(modes=["blank", "on_fire"])


class TestCorruptPayload:
    def test_every_mode_produces_an_unparseable_page(self):
        from repro.crawler.parse import PageParseError, parse_profile_page

        for mode in CORRUPTION_MODES:
            mangled = corrupt_payload(profile_page(), mode)
            with pytest.raises(PageParseError):
                parse_profile_page(mangled)

    def test_blank_is_not_none(self):
        # None is the transport's 404 signal: a blank page must stay
        # distinguishable from a missing profile so it dead-letters
        # instead of being recorded as not-found.
        assert corrupt_payload(profile_page(), "blank") is not None

    def test_unknown_mode_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown corruption mode"):
            corrupt_payload(profile_page(), "nope")


class TestScheduleComposition:
    def test_first_blocking_rule_wins(self):
        schedule = FaultSchedule(
            [Outage(start=0.0, end=1.0, retry_after=0.7), IpBan(start=0.0, end=1.0)]
        )
        decision = schedule.evaluate(0.1, "ip")
        assert decision.status == STATUS_SERVER_ERROR

    def test_slowdowns_accumulate(self):
        schedule = FaultSchedule(
            [
                SlowResponses(rate=1.0, extra_latency=0.2, seed=1),
                SlowResponses(rate=1.0, extra_latency=0.3, seed=2),
            ]
        )
        assert schedule.evaluate(0.0, "ip").slow_by == pytest.approx(0.5)

    def test_quiet_schedule_returns_none(self):
        schedule = FaultSchedule([IpBan(start=5.0, end=6.0)])
        assert schedule.evaluate(0.0, "ip") is None

    def test_rng_draws_independent_of_rule_order(self):
        # Fixed draw discipline: a blocking rule upstream must not
        # change what a downstream seeded rule decides later.
        def burst():
            return ErrorBurst(start=0.0, end=10.0, rate=0.4, seed=9)

        alone = FaultSchedule([burst()])
        behind_ban = FaultSchedule([IpBan(start=0.0, end=5.0), burst()])
        lone_hits = [alone.evaluate(t / 10, "ip") is not None for t in range(100)]
        # With the ban in front, the burst's own decisions (observable
        # once the ban lifts, t >= 5.0) must match the solo sequence.
        paired_hits = []
        for t in range(100):
            decision = behind_ban.evaluate(t / 10, "ip")
            paired_hits.append(
                decision is not None and decision.kind == "error_burst"
            )
        assert lone_hits[50:] == paired_hits[50:]


class TestExportRestore:
    def test_round_trip_resumes_the_draw_sequence(self):
        schedule = FaultSchedule(
            [
                ErrorBurst(start=0.0, end=10.0, rate=0.5, seed=2),
                CorruptPages(start=0.0, end=10.0, rate=0.5, seed=3),
            ]
        )
        for _ in range(37):
            schedule.evaluate(1.0, "ip")
        state = schedule.export_state()
        expected = [schedule.evaluate(1.0, "ip") for _ in range(20)]

        fresh = FaultSchedule(
            [
                ErrorBurst(start=0.0, end=10.0, rate=0.5, seed=2),
                CorruptPages(start=0.0, end=10.0, rate=0.5, seed=3),
            ]
        )
        fresh.restore_state(state)
        resumed = [fresh.evaluate(1.0, "ip") for _ in range(20)]
        for a, b in zip(expected, resumed):
            assert (a is None) == (b is None)
            if a is not None:
                assert (a.kind, a.status, a.corrupt_mode) == (
                    b.kind,
                    b.status,
                    b.corrupt_mode,
                )

    def test_restore_rejects_mismatched_rule_count(self):
        schedule = FaultSchedule([BernoulliErrors(rate=0.1)])
        with pytest.raises(FaultSpecError, match="state covers"):
            schedule.restore_state({"rules": [{}, {}]})


class TestFromDict:
    def test_builds_every_kind(self):
        spec = {
            "seed": 7,
            "rules": [
                {"kind": "error_burst", "start": 0, "end": 1, "rate": 0.5},
                {"kind": "bernoulli_errors", "rate": 0.1},
                {"kind": "ip_ban", "start": 0, "end": 1, "ips": ["a"]},
                {"kind": "outage", "start": 0, "end": 1},
                {"kind": "timeouts", "start": 0, "end": 1, "rate": 0.1},
                {"kind": "slow_responses", "start": 0, "end": 1, "rate": 0.1},
                {"kind": "corrupt_pages", "start": 0, "end": 1, "rate": 0.1},
            ],
        }
        schedule = FaultSchedule.from_dict(spec)
        assert len(schedule) == 7

    def test_same_document_same_chaos(self):
        spec = {
            "seed": 21,
            "rules": [{"kind": "error_burst", "start": 0, "end": 9, "rate": 0.4}],
        }
        first = FaultSchedule.from_dict(spec)
        second = FaultSchedule.from_dict(spec)
        a = [first.evaluate(1.0, "ip") is not None for _ in range(200)]
        b = [second.evaluate(1.0, "ip") is not None for _ in range(200)]
        assert a == b

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown kind"):
            FaultSchedule.from_dict({"rules": [{"kind": "gremlins"}]})

    def test_unknown_parameter_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown parameters"):
            FaultSchedule.from_dict(
                {"rules": [{"kind": "outage", "start": 0, "end": 1, "color": "red"}]}
            )

    def test_missing_rules_rejected(self):
        with pytest.raises(FaultSpecError, match="'rules' list"):
            FaultSchedule.from_dict({"seed": 3})

    def test_non_mapping_rejected(self):
        with pytest.raises(FaultSpecError, match="mapping"):
            FaultSchedule.from_dict(["not", "a", "mapping"])
