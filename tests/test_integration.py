"""Cross-module integration invariants: world -> crawl -> graph -> analyses."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.reciprocity import global_reciprocity


class TestCrawlFidelity:
    def test_crawled_edges_subset_of_truth(self, small_world, small_crawl):
        truth = set(
            zip(
                small_world.graph.sources.tolist(),
                small_world.graph.targets.tolist(),
            )
        )
        for u, v in zip(small_crawl.sources, small_crawl.targets):
            assert (int(u), int(v)) in truth

    def test_crawled_profiles_match_service_profiles(
        self, small_world, small_crawl
    ):
        for user_id, parsed in list(small_crawl.profiles.items())[:200]:
            truth = small_world.profiles[user_id]
            assert parsed.name == truth.name
            # Every field the crawler saw is a public field of the truth.
            for key in parsed.fields:
                assert truth.get_public(key) is not None

    def test_private_fields_never_leak(self, small_world, small_crawl):
        leaked = 0
        for user_id, parsed in small_crawl.profiles.items():
            truth = small_world.profiles[user_id]
            for key, entry in truth.fields.items():
                if not entry.is_public() and key in parsed.fields:
                    leaked += 1
        assert leaked == 0

    def test_tel_users_match_ground_truth(self, small_world, small_crawl):
        truth_tel = {
            uid
            for uid in range(small_world.n_users)
            if small_world.population.tel_users[uid]
        }
        crawled_tel = {
            p.user_id for p in small_crawl.profiles.values() if p.shares_phone()
        }
        assert crawled_tel == truth_tel

    def test_degrees_match_service(self, small_world, small_crawl):
        graph = small_crawl.to_csr()
        service = small_world.service
        for user_id in list(small_crawl.profiles)[:100]:
            compact = graph.compact_index(user_id)
            # Full crawl with public lists: crawled degree <= service degree,
            # equality unless a partner hides lists.
            assert len(graph.out_neighbors(compact)) <= service.out_degree(user_id)


class TestMeasurementConsistency:
    def test_reciprocity_of_crawl_close_to_truth(self, small_world, small_crawl):
        truth_graph = CSRGraph.from_edge_arrays(
            small_world.graph.sources,
            small_world.graph.targets,
            node_ids=np.arange(small_world.n_users),
        )
        crawled = global_reciprocity(small_crawl.to_csr())
        truth = global_reciprocity(truth_graph)
        assert crawled == pytest.approx(truth, abs=0.02)

    def test_geo_countries_match_population(self, small_world, small_crawl):
        from repro.geo.index import build_geo_index

        index = build_geo_index(small_crawl)
        mismatches = 0
        for user_id, resolved in zip(index.user_ids, index.countries):
            if small_world.population.country_codes[int(user_id)] != resolved:
                mismatches += 1
        # Resolution by nearest city may flip border cases only.
        assert mismatches / max(1, index.n_located) < 0.02


class TestStudyEndToEnd:
    def test_headline_story_reproduced(self, study_results):
        """The paper's abstract in assertions."""
        # "higher level of reciprocity than Twitter"
        assert study_results.table4_row.reciprocity > 0.221
        # "average path length ... slightly higher" (directed > undirected)
        assert (
            study_results.fig5_paths.directed.mean
            > study_results.fig5_paths.undirected.mean
        )
        # "Google+ is popular in countries with relatively low Internet
        # penetration rate" — top-GPR country has sub-50% penetration.
        top_gpr = study_results.fig7_penetration.ranked_by_gpr()[0]
        assert top_gpr.internet_penetration < 0.5
        # "notion of privacy varies significantly across cultures"
        openness = study_results.fig8_openness
        means = [c.mean_fields for c in openness.by_country.values()]
        assert max(means) - min(means) > 0.4
        # "physical distance is crucial in the likelihood of forming a link"
        f9 = study_results.fig9a_path_miles
        assert f9.samples.fraction_within(1000, "friends") > (
            f9.samples.fraction_within(1000, "random_pairs") + 0.15
        )
