"""Tests for profile-page documents and circle-list truncation."""

import pytest

from repro.platform.pages import CircleListView, ProfilePage, truncate_list


class TestCircleListView:
    def test_truncated_flag(self):
        view = CircleListView(user_ids=(1, 2), declared_count=5)
        assert view.truncated

    def test_not_truncated_when_complete(self):
        view = CircleListView(user_ids=(1, 2), declared_count=2)
        assert not view.truncated

    def test_declared_count_cannot_undercut_shown(self):
        with pytest.raises(ValueError):
            CircleListView(user_ids=(1, 2, 3), declared_count=2)


class TestTruncateList:
    def test_no_truncation_below_limit(self):
        view = truncate_list([1, 2, 3], limit=10)
        assert view.user_ids == (1, 2, 3)
        assert view.declared_count == 3

    def test_truncation_preserves_true_count(self):
        view = truncate_list(list(range(100)), limit=10)
        assert len(view.user_ids) == 10
        assert view.declared_count == 100
        assert view.user_ids == tuple(range(10))

    def test_empty_list(self):
        view = truncate_list([])
        assert view.user_ids == ()
        assert view.declared_count == 0


class TestProfilePage:
    def test_visible_field_keys_include_name(self):
        page = ProfilePage(user_id=1, name="Ada", fields={"occupation": "Eng"})
        assert page.visible_field_keys() == ["name", "occupation"]
