"""Stateful property test: random operation sequences keep the service
internally consistent (followers/followees symmetry, degree accounting,
page-list agreement)."""

import hypothesis.strategies as st
from hypothesis.stateful import (
    invariant,
    rule,
    RuleBasedStateMachine,
)

from repro.platform.circles import OUT_CIRCLE_LIMIT
from repro.platform.errors import CircleLimitError
from repro.platform.models import UserProfile
from repro.platform.service import GooglePlusService

N_USERS = 12
CIRCLES = ("friends", "family", "colleagues")


class ServiceMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.service = GooglePlusService(open_signup=True)
        for uid in range(N_USERS):
            self.service.register(UserProfile(user_id=uid, name=f"U{uid}"))
        # Reference model: set of directed links.
        self.links: set[tuple[int, int]] = set()

    users = st.integers(min_value=0, max_value=N_USERS - 1)

    @rule(u=users, v=users, circle=st.sampled_from(CIRCLES))
    def add(self, u, v, circle):
        if u == v:
            return
        try:
            self.service.add_to_circle(u, v, circle)
        except CircleLimitError:
            assert len(self.links) >= OUT_CIRCLE_LIMIT  # unreachable here
            return
        self.links.add((u, v))

    @rule(u=users, v=users)
    def remove_everywhere(self, u, v):
        if u == v or not self.service._account(u).circles.contains(v):
            return
        removed = self.service.remove_from_circle(u, v)
        assert removed
        self.links.discard((u, v))

    @rule(u=users, v=users, circle=st.sampled_from(CIRCLES))
    def remove_from_one_circle(self, u, v, circle):
        account = self.service._account(u)
        if circle not in account.circles.members_by_circle:
            return
        was_linked = (u, v) in self.links
        fully_removed = self.service.remove_from_circle(u, v, circle)
        if fully_removed:
            # True means an existing link died — never-members report False.
            assert was_linked
            self.links.discard((u, v))
        else:
            assert (u, v) in self.links or not was_linked

    @invariant()
    def links_match_model(self):
        actual = {
            (u, v)
            for u in range(N_USERS)
            for v in self.service.followees(u)
        }
        assert actual == self.links

    @invariant()
    def followers_mirror_followees(self):
        for v in range(N_USERS):
            for u in self.service.followers(v):
                assert v in self.service.followees(u)
        for u in range(N_USERS):
            for v in self.service.followees(u):
                assert u in self.service.followers(v)

    @invariant()
    def degrees_consistent(self):
        total_out = sum(self.service.out_degree(u) for u in range(N_USERS))
        total_in = sum(self.service.in_degree(u) for u in range(N_USERS))
        assert total_out == total_in == len(self.links)

    @invariant()
    def pages_agree_with_state(self):
        page = self.service.profile_page(0)
        assert page.out_list.declared_count == self.service.out_degree(0)
        assert page.in_list.declared_count == self.service.in_degree(0)


TestServiceStateMachine = ServiceMachine.TestCase
