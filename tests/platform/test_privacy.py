"""Tests for the five-level field-visibility model."""

import pytest

from repro.platform.privacy import (
    custom,
    EXTENDED_CIRCLES,
    FieldPrivacy,
    ONLY_YOU,
    PUBLIC,
    Visibility,
    YOUR_CIRCLES,
)


class TestVisibility:
    def test_five_levels_exist(self):
        assert len(Visibility) == 5

    def test_level_values_match_paper_wording(self):
        assert Visibility.PUBLIC.value == "public"
        assert Visibility.EXTENDED_CIRCLES.value == "extended circles"
        assert Visibility.YOUR_CIRCLES.value == "your circles"
        assert Visibility.ONLY_YOU.value == "only you"
        assert Visibility.CUSTOM.value == "custom"


class TestFieldPrivacy:
    def test_default_is_public(self):
        assert FieldPrivacy().is_public()

    def test_public_constant(self):
        assert PUBLIC.visibility is Visibility.PUBLIC
        assert PUBLIC.is_public()

    @pytest.mark.parametrize(
        "setting", [ONLY_YOU, YOUR_CIRCLES, EXTENDED_CIRCLES, custom("family")]
    )
    def test_non_public_levels(self, setting):
        assert not setting.is_public()

    def test_custom_carries_circle_names(self):
        setting = custom("family", "colleagues")
        assert setting.visibility is Visibility.CUSTOM
        assert setting.custom_circles == frozenset({"family", "colleagues"})

    def test_custom_with_no_circles_is_empty(self):
        assert custom().custom_circles == frozenset()

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PUBLIC.visibility = Visibility.ONLY_YOU  # type: ignore[misc]

    def test_hashable_for_use_in_sets(self):
        assert len({PUBLIC, ONLY_YOU, PUBLIC}) == 2
