"""Tests for profile data models."""

import pytest

from repro.platform.models import (
    ContactInfo,
    Gender,
    Occupation,
    OCCUPATION_LABELS,
    Place,
    Relationship,
    UserProfile,
)
from repro.platform.privacy import ONLY_YOU, PUBLIC, YOUR_CIRCLES


class TestEnums:
    def test_nine_relationship_statuses_as_in_table3(self):
        assert len(Relationship) == 9

    def test_relationship_values_match_table3_wording(self):
        assert Relationship.ITS_COMPLICATED.value == "It's complicated"
        assert Relationship.OPEN_RELATIONSHIP.value == "In an open relationship"
        assert Relationship.CIVIL_UNION.value == "In a civil union"

    def test_three_genders(self):
        assert {g.value for g in Gender} == {"Male", "Female", "Other"}

    def test_every_occupation_has_a_label(self):
        assert set(OCCUPATION_LABELS) == set(Occupation)

    def test_table5_codes(self):
        assert Occupation.IT.value == "IT"
        assert Occupation.COMEDIAN.value == "Co"
        assert Occupation.TV_HOST.value == "TV"


class TestPlace:
    def test_valid_place(self):
        place = Place("Boston", 42.36, -71.06, "US")
        assert place.country == "US"

    @pytest.mark.parametrize("lat", [-90.1, 91.0])
    def test_latitude_validation(self, lat):
        with pytest.raises(ValueError):
            Place("X", lat, 0.0, "US")

    @pytest.mark.parametrize("lon", [-180.1, 181.0])
    def test_longitude_validation(self, lon):
        with pytest.raises(ValueError):
            Place("X", 0.0, lon, "US")

    def test_boundary_coordinates_accepted(self):
        Place("South Pole", -90.0, 180.0, "AQ")


class TestContactInfo:
    def test_has_phone(self):
        assert ContactInfo(phone="+1 555 0100").has_phone()

    def test_no_phone(self):
        assert not ContactInfo(email="a@example.com").has_phone()
        assert not ContactInfo(phone="").has_phone()


def make_profile(**fields) -> UserProfile:
    profile = UserProfile(user_id=1, name="Ada")
    for key, (value, privacy) in fields.items():
        profile.set_field(key, value, privacy)
    return profile


class TestUserProfile:
    def test_name_always_public(self):
        profile = make_profile()
        assert profile.get_public("name") == "Ada"
        assert "name" in profile.public_field_keys()

    def test_unknown_field_rejected(self):
        profile = make_profile()
        with pytest.raises(ValueError):
            profile.set_field("favorite_color", "blue")

    def test_name_not_settable_as_field(self):
        with pytest.raises(ValueError):
            make_profile().set_field("name", "Eve")

    def test_constructor_validates_field_keys(self):
        from repro.platform.models import FieldValue

        with pytest.raises(ValueError):
            UserProfile(user_id=1, name="x", fields={"bogus": FieldValue(1)})

    def test_public_field_visible(self):
        profile = make_profile(occupation=("Engineer", PUBLIC))
        assert profile.get_public("occupation") == "Engineer"

    def test_private_field_hidden(self):
        profile = make_profile(occupation=("Engineer", ONLY_YOU))
        assert profile.get_public("occupation") is None

    def test_count_public_fields_excludes_contacts_by_default(self):
        profile = make_profile(
            occupation=("Engineer", PUBLIC),
            work_contact=(ContactInfo(phone="+1"), PUBLIC),
        )
        assert profile.count_public_fields() == 2  # name + occupation
        assert profile.count_public_fields(include_contacts=True) == 3

    def test_count_public_fields_skips_private(self):
        profile = make_profile(
            occupation=("Engineer", PUBLIC),
            education=("MIT", YOUR_CIRCLES),
        )
        assert profile.count_public_fields() == 2

    def test_shares_phone_publicly_requires_public_and_phone(self):
        public_phone = make_profile(work_contact=(ContactInfo(phone="+1"), PUBLIC))
        hidden_phone = make_profile(work_contact=(ContactInfo(phone="+1"), ONLY_YOU))
        public_email = make_profile(
            home_contact=(ContactInfo(email="a@b.c"), PUBLIC)
        )
        assert public_phone.shares_phone_publicly()
        assert not hidden_phone.shares_phone_publicly()
        assert not public_email.shares_phone_publicly()

    def test_current_place_is_last_entry(self):
        places = [Place("A", 0, 0, "US"), Place("B", 1, 1, "CA")]
        profile = make_profile(places_lived=(places, PUBLIC))
        assert profile.current_place().name == "B"

    def test_current_place_none_when_hidden(self):
        places = [Place("A", 0, 0, "US")]
        profile = make_profile(places_lived=(places, ONLY_YOU))
        assert profile.current_place() is None

    def test_current_place_none_when_absent(self):
        assert make_profile().current_place() is None
