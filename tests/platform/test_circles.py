"""Tests for circle management and its caps."""

import pytest

from repro.platform.circles import (
    CIRCLE_DISPLAY_LIMIT,
    CircleStore,
    DEFAULT_CIRCLE,
    OUT_CIRCLE_LIMIT,
)
from repro.platform.errors import CircleLimitError, UnknownCircleError


@pytest.fixture
def store() -> CircleStore:
    return CircleStore(owner_id=0)


class TestConstants:
    def test_paper_limits(self):
        assert CIRCLE_DISPLAY_LIMIT == 10_000
        assert OUT_CIRCLE_LIMIT == 5_000


class TestAdd:
    def test_add_creates_link(self, store):
        assert store.add(1) is True
        assert store.contains(1)
        assert store.out_degree() == 1

    def test_add_to_second_circle_is_not_new_link(self, store):
        store.add(1, "friends")
        assert store.add(1, "family") is False
        assert store.out_degree() == 1
        assert sorted(store.circles_of(1)) == ["family", "friends"]

    def test_add_auto_creates_circle(self, store):
        store.add(1, "colleagues")
        assert "colleagues" in store.circle_names()

    def test_self_add_rejected(self, store):
        with pytest.raises(ValueError):
            store.add(0)

    def test_limit_enforced(self):
        store = CircleStore(owner_id=0)
        store.members_by_circle[DEFAULT_CIRCLE] = {}
        # Fill to the cap cheaply.
        store.all_members = {i: None for i in range(1, OUT_CIRCLE_LIMIT + 1)}
        with pytest.raises(CircleLimitError):
            store.add(OUT_CIRCLE_LIMIT + 10)

    def test_limit_does_not_block_existing_contact(self):
        store = CircleStore(owner_id=0)
        store.members_by_circle["friends"] = {1: None}
        store.all_members = {i: None for i in range(1, OUT_CIRCLE_LIMIT + 1)}
        # Re-adding an existing contact to another circle is allowed.
        assert store.add(1, "family") is False

    def test_exempt_account_passes_limit(self):
        store = CircleStore(owner_id=0, exempt_from_limit=True)
        store.all_members = {i: None for i in range(1, OUT_CIRCLE_LIMIT + 1)}
        assert store.add(OUT_CIRCLE_LIMIT + 10) is True


class TestRemove:
    def test_remove_from_all_circles(self, store):
        store.add(1, "friends")
        store.add(1, "family")
        assert store.remove(1) is True
        assert not store.contains(1)

    def test_remove_from_one_circle_keeps_link(self, store):
        store.add(1, "friends")
        store.add(1, "family")
        assert store.remove(1, "friends") is False
        assert store.contains(1)

    def test_remove_last_circle_drops_link(self, store):
        store.add(1, "friends")
        assert store.remove(1, "friends") is True
        assert not store.contains(1)

    def test_remove_unknown_circle_raises(self, store):
        store.add(1)
        with pytest.raises(UnknownCircleError):
            store.remove(1, "nope")

    def test_remove_absent_contact_is_noop(self, store):
        store.create_circle("friends")
        # No link existed, so no link *disappeared*: False, not True.
        assert store.remove(99, "friends") is False

    def test_remove_never_member_returns_false(self, store):
        store.add(1)
        assert store.remove(99) is False
        assert store.contains(1)

    def test_remove_never_member_from_named_circle(self, store):
        store.add(1, "friends")
        assert store.remove(99, "friends") is False

    def test_remove_twice_second_is_false(self, store):
        store.add(1)
        assert store.remove(1) is True
        assert store.remove(1) is False


class TestExtendAddParity:
    def test_empty_batch_creates_no_circle(self, store):
        # Zero add() calls create nothing; extend([]) must match.
        assert store.extend([], "work") == []
        assert store.circle_names() == []

    def test_empty_batch_on_existing_circle(self, store):
        store.add(1, "work")
        assert store.extend([], "work") == []
        assert store.circle_names() == ["work"]

    def test_duplicate_targets_match_add_sequence(self, store):
        reference = CircleStore(owner_id=0)
        new_by_add = [t for t in (3, 3, 5, 3) if reference.add(t, "friends")]
        assert store.extend([3, 3, 5, 3], "friends") == new_by_add
        assert store.members_by_circle == reference.members_by_circle
        assert store.all_members == reference.all_members

    def test_multi_circle_batches_match_add_sequence(self, store):
        reference = CircleStore(owner_id=0)
        for t in (1, 2):
            reference.add(t, "friends")
        for t in (2, 3):
            reference.add(t, "family")
        assert store.extend([1, 2], "friends") == [1, 2]
        assert store.extend([2, 3], "family") == [3]
        assert store.members_by_circle == reference.members_by_circle
        assert store.all_members == reference.all_members

    def test_failed_batch_mutates_nothing(self, store):
        store.add(1, "friends")
        with pytest.raises(ValueError):
            store.extend([2, 0], "family")  # self-add poisons the batch
        assert store.circle_names() == ["friends"]
        assert store.flattened() == [1]


class TestFlattened:
    def test_insertion_order_preserved(self, store):
        for target in (5, 3, 9):
            store.add(target)
        assert store.flattened() == [5, 3, 9]

    def test_flattened_deduplicates_across_circles(self, store):
        store.add(1, "friends")
        store.add(1, "family")
        store.add(2, "family")
        assert store.flattened() == [1, 2]
