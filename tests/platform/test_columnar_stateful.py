"""Stateful differential proof: the columnar store IS the dict store.

One hypothesis state machine drives a dict-backed
:class:`GooglePlusService` and a columnar
:class:`ColumnarGooglePlusService` seeded with the same world through
identical randomized operation sequences — circle edits (including
removals and never-member removals), field updates across every privacy
level, list-visibility toggles, post-ingest registrations — and asserts
after every step that every observable agrees: profile fields and
privacy-rendered pages (byte-for-byte), ``circles_of`` / ``flattened``
/ ``out_degree``, followers, and ``member_of``.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    invariant,
    rule,
    RuleBasedStateMachine,
)

from repro.platform.columnar import (
    ColumnarGooglePlusService,
    ColumnarProfileStore,
)
from repro.platform.models import UserProfile
from repro.platform.privacy import (
    custom,
    EXTENDED_CIRCLES,
    ONLY_YOU,
    PUBLIC,
    YOUR_CIRCLES,
)
from repro.platform.service import GooglePlusService
from repro.serve.cache import page_to_bytes

N_BASE = 10
CIRCLES = ("friends", "family", "vips")
FIELDS = ("occupation", "introduction", "education", "employment")
PRIVACIES = (PUBLIC, ONLY_YOU, YOUR_CIRCLES, EXTENDED_CIRCLES, custom("vips"))

#: The ingested base world: (source, target, circle-label index).
BASE_EDGES = (
    (0, 1, 2),  # 0 has 1 in "vips" — exercises CUSTOM reads
    (0, 2, 0),
    (1, 0, 0),
    (2, 3, 1),
    (4, 0, 0),
    (5, 6, 0),
)


def base_profiles() -> dict[int, UserProfile]:
    profiles = {}
    for uid in range(N_BASE):
        profile = UserProfile(user_id=uid, name=f"User {uid}")
        profiles[uid] = profile
    profiles[0].set_field("gender", "female", PUBLIC)
    profiles[0].set_field("occupation", "engineer", YOUR_CIRCLES)
    profiles[0].set_field("education", "stanford", EXTENDED_CIRCLES)
    profiles[0].set_field("introduction", "hello vips", custom("vips"))
    profiles[0].set_field("employment", "secret corp", ONLY_YOU)
    profiles[1].set_field("occupation", "artist", YOUR_CIRCLES)
    profiles[1].lists_public = False
    return profiles


def build_pair() -> tuple[GooglePlusService, ColumnarGooglePlusService]:
    profiles = base_profiles()
    reference = GooglePlusService(open_signup=True)
    for uid in range(N_BASE):
        reference.register(profiles[uid])
    import numpy as np

    sources = np.array([e[0] for e in BASE_EDGES])
    targets = np.array([e[1] for e in BASE_EDGES])
    labels = np.array([e[2] for e in BASE_EDGES], dtype=np.uint8)
    reference.add_edges_bulk(sources, targets, circle_index=(CIRCLES, labels))
    columnar = ColumnarGooglePlusService(open_signup=True)
    columnar.ingest_world(
        ColumnarProfileStore.from_profiles(base_profiles()),
        sources,
        targets,
        CIRCLES,
        labels,
    )
    return reference, columnar


class ColumnarEquivalenceMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.reference, self.columnar = build_pair()
        self.next_uid = N_BASE

    users = st.integers(min_value=0, max_value=N_BASE - 1)

    def _both(self, op):
        """Apply an operation to both services; outcomes must match too."""
        results = []
        for service in (self.reference, self.columnar):
            try:
                results.append(("ok", op(service)))
            except Exception as exc:  # identical failures are agreement
                results.append(("err", type(exc).__name__))
        assert results[0] == results[1], results
        return results[0]

    @rule(u=users, v=users, circle=st.sampled_from(CIRCLES))
    def add_to_circle(self, u, v, circle):
        self._both(lambda s: s.add_to_circle(u, v, circle))

    @rule(u=users, v=users, circle=st.sampled_from(CIRCLES + (None,)))
    def remove_from_circle(self, u, v, circle):
        # Includes never-member and unknown-circle removals: the return
        # value and the raised error must agree across stores.
        self._both(lambda s: s.remove_from_circle(u, v, circle))

    @rule(
        u=users,
        key=st.sampled_from(FIELDS),
        value=st.integers(min_value=0, max_value=99),
        privacy=st.sampled_from(range(len(PRIVACIES))),
    )
    def update_field(self, u, key, value, privacy):
        self._both(
            lambda s: s.update_field(u, key, f"v{value}", PRIVACIES[privacy])
        )

    @rule(u=users, public=st.booleans())
    def set_lists_public(self, u, public):
        self._both(lambda s: s.set_lists_public(u, public))

    @rule()
    def register_new_user(self):
        uid = self.next_uid
        self.next_uid += 1
        self._both(
            lambda s: s.register(UserProfile(user_id=uid, name=f"User {uid}"))
        )

    @invariant()
    def circle_state_identical(self):
        for uid in range(self.next_uid):
            ref = self.reference._account(uid).circles
            col = self.columnar._account(uid).circles
            assert ref.flattened() == col.flattened(), uid
            assert ref.out_degree() == col.out_degree(), uid
            for target in range(self.next_uid):
                assert ref.circles_of(target) == col.circles_of(target)
                assert ref.contains(target) == col.contains(target)
                for circle in CIRCLES:
                    assert ref.member_of(target, circle) == col.member_of(
                        target, circle
                    ), (uid, target, circle)
            assert self.reference.followers(uid) == self.columnar.followers(uid)

    @invariant()
    def rendered_pages_identical(self):
        viewers = [None] + list(range(self.next_uid))
        for owner in range(self.next_uid):
            for viewer in viewers:
                ref = page_to_bytes(self.reference.profile_page(owner, viewer))
                col = page_to_bytes(self.columnar.profile_page(owner, viewer))
                assert ref == col, (owner, viewer)

    @invariant()
    def profiles_identical(self):
        for uid in range(self.next_uid):
            ref = self.reference.profile(uid)
            col = self.columnar.profile(uid)
            assert ref.name == col.name, uid
            assert ref.lists_public == col.lists_public, uid
            assert set(ref.fields) == set(col.fields), uid
            for key, entry in ref.fields.items():
                other = col.fields[key]
                assert entry.value == other.value, (uid, key)
                assert entry.privacy == other.privacy, (uid, key)


TestColumnarEquivalence = ColumnarEquivalenceMachine.TestCase
TestColumnarEquivalence.settings = settings(
    max_examples=25, stateful_step_count=15, deadline=None
)
