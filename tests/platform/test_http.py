"""Tests for the simulated HTTP layer: clock, rate limiter, flakiness."""

import pytest

from repro.platform.http import (
    FlakinessModel,
    HttpFrontend,
    RateLimiter,
    Request,
    Response,
    SimulatedClock,
    STATUS_NOT_FOUND,
    STATUS_OK,
    STATUS_SERVER_ERROR,
    STATUS_TOO_MANY_REQUESTS,
    TokenBucket,
)


class TestResponse:
    def test_ok(self):
        assert Response(STATUS_OK).ok
        assert not Response(STATUS_NOT_FOUND).ok

    def test_should_retry_only_transient_statuses(self):
        assert Response(STATUS_TOO_MANY_REQUESTS, retry_after=0.5).should_retry
        assert Response(STATUS_SERVER_ERROR).should_retry
        assert not Response(STATUS_OK).should_retry
        assert not Response(STATUS_NOT_FOUND).should_retry


class TestClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now() == 0.0

    def test_advance(self):
        clock = SimulatedClock(10.0)
        assert clock.advance(2.5) == 12.5
        assert clock.now() == 12.5

    def test_cannot_rewind(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1.0)


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(rate=1.0, capacity=3.0)
        for _ in range(3):
            granted, _ = bucket.try_take(0.0)
            assert granted

    def test_empty_bucket_refuses_with_retry_after(self):
        bucket = TokenBucket(rate=2.0, capacity=1.0)
        assert bucket.try_take(0.0) == (True, 0.0)
        granted, retry_after = bucket.try_take(0.0)
        assert not granted
        assert retry_after == pytest.approx(0.5)

    def test_refills_over_time(self):
        bucket = TokenBucket(rate=1.0, capacity=1.0)
        bucket.try_take(0.0)
        granted, _ = bucket.try_take(1.0)
        assert granted

    def test_capacity_bounds_refill(self):
        bucket = TokenBucket(rate=10.0, capacity=2.0)
        bucket.try_take(0.0)
        bucket.try_take(0.0)
        # After a long idle period the bucket holds at most `capacity`.
        for _ in range(2):
            granted, _ = bucket.try_take(100.0)
            assert granted
        granted, _ = bucket.try_take(100.0)
        assert not granted

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, capacity=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=0.0)


class TestRateLimiter:
    def test_buckets_are_per_ip(self):
        clock = SimulatedClock()
        limiter = RateLimiter(rate_per_ip=1.0, burst=1.0, clock=clock)
        assert limiter.admit("10.0.0.1")[0]
        assert not limiter.admit("10.0.0.1")[0]
        assert limiter.admit("10.0.0.2")[0]  # fresh bucket


class TestFlakiness:
    def test_zero_rate_never_fails(self):
        model = FlakinessModel(0.0)
        assert not any(model.should_fail() for _ in range(100))

    def test_deterministic_given_seed(self):
        a = [FlakinessModel(0.5, seed=42).should_fail() for _ in range(50)]
        b = [FlakinessModel(0.5, seed=42).should_fail() for _ in range(50)]
        assert a == b

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FlakinessModel(1.0)
        with pytest.raises(ValueError):
            FlakinessModel(-0.1)


def echo_handler(path: str):
    if path == "/missing":
        return STATUS_NOT_FOUND, None
    return STATUS_OK, path


class TestFrontend:
    def test_serves_handler_payload(self):
        frontend = HttpFrontend(echo_handler)
        response = frontend.handle(Request("/u/1", "1.2.3.4"))
        assert response.ok
        assert response.payload == "/u/1"
        assert frontend.requests_served == 1

    def test_not_found_passthrough(self):
        frontend = HttpFrontend(echo_handler)
        response = frontend.handle(Request("/missing", "1.2.3.4"))
        assert response.status == STATUS_NOT_FOUND

    def test_throttling_kicks_in(self):
        frontend = HttpFrontend(echo_handler, rate_per_ip=1.0, burst=2.0)
        statuses = [
            frontend.handle(Request("/u/1", "9.9.9.9")).status for _ in range(4)
        ]
        assert STATUS_TOO_MANY_REQUESTS in statuses
        assert frontend.requests_throttled > 0

    def test_throttle_response_carries_retry_after(self):
        frontend = HttpFrontend(echo_handler, rate_per_ip=1.0, burst=1.0)
        frontend.handle(Request("/u/1", "9.9.9.9"))
        response = frontend.handle(Request("/u/1", "9.9.9.9"))
        assert response.status == STATUS_TOO_MANY_REQUESTS
        assert response.retry_after > 0

    def test_error_injection(self):
        frontend = HttpFrontend(echo_handler, error_rate=0.5, seed=3)
        statuses = [
            frontend.handle(Request("/u/1", f"ip-{i}")).status for i in range(60)
        ]
        assert STATUS_SERVER_ERROR in statuses
        assert STATUS_OK in statuses

    def test_clock_shared_with_limiter(self):
        frontend = HttpFrontend(echo_handler, rate_per_ip=1.0, burst=1.0)
        frontend.handle(Request("/u/1", "ip"))
        assert frontend.handle(Request("/u/1", "ip")).status == STATUS_TOO_MANY_REQUESTS
        frontend.clock.advance(1.5)
        assert frontend.handle(Request("/u/1", "ip")).ok

    def test_requests_counted_by_status(self):
        from repro.obs.metrics import Registry

        registry = Registry(enabled=True)
        frontend = HttpFrontend(
            echo_handler, rate_per_ip=1.0, burst=1.0, registry=registry
        )
        frontend.handle(Request("/u/1", "ip"))       # 200
        frontend.handle(Request("/u/1", "ip"))       # throttled
        frontend.clock.advance(2.0)
        frontend.handle(Request("/missing", "ip"))   # 404
        counter = registry.get("http.requests")
        assert counter.value(status=STATUS_OK) == 1
        assert counter.value(status=STATUS_TOO_MANY_REQUESTS) == 1
        assert counter.value(status=STATUS_NOT_FOUND) == 1
        assert counter.value(status=STATUS_SERVER_ERROR) == 0
        # Throttle waits feed the advertised-delay histogram.
        assert registry.get("http.throttle_wait_seconds").series_stats()["count"] == 1
