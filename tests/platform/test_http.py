"""Tests for the simulated HTTP layer: clock, rate limiter, flakiness."""

import pytest

from repro.platform.http import (
    FlakinessModel,
    HttpFrontend,
    RateLimiter,
    Request,
    Response,
    SimulatedClock,
    STATUS_NOT_FOUND,
    STATUS_OK,
    STATUS_SERVER_ERROR,
    STATUS_TOO_MANY_REQUESTS,
    TokenBucket,
)


class TestResponse:
    def test_ok(self):
        assert Response(STATUS_OK).ok
        assert not Response(STATUS_NOT_FOUND).ok

    def test_should_retry_only_transient_statuses(self):
        assert Response(STATUS_TOO_MANY_REQUESTS, retry_after=0.5).should_retry
        assert Response(STATUS_SERVER_ERROR).should_retry
        assert not Response(STATUS_OK).should_retry
        assert not Response(STATUS_NOT_FOUND).should_retry


class TestClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now() == 0.0

    def test_advance(self):
        clock = SimulatedClock(10.0)
        assert clock.advance(2.5) == 12.5
        assert clock.now() == 12.5

    def test_cannot_rewind(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1.0)


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(rate=1.0, capacity=3.0)
        for _ in range(3):
            granted, _ = bucket.try_take(0.0)
            assert granted

    def test_empty_bucket_refuses_with_retry_after(self):
        bucket = TokenBucket(rate=2.0, capacity=1.0)
        assert bucket.try_take(0.0) == (True, 0.0)
        granted, retry_after = bucket.try_take(0.0)
        assert not granted
        assert retry_after == pytest.approx(0.5)

    def test_refills_over_time(self):
        bucket = TokenBucket(rate=1.0, capacity=1.0)
        bucket.try_take(0.0)
        granted, _ = bucket.try_take(1.0)
        assert granted

    def test_capacity_bounds_refill(self):
        bucket = TokenBucket(rate=10.0, capacity=2.0)
        bucket.try_take(0.0)
        bucket.try_take(0.0)
        # After a long idle period the bucket holds at most `capacity`.
        for _ in range(2):
            granted, _ = bucket.try_take(100.0)
            assert granted
        granted, _ = bucket.try_take(100.0)
        assert not granted

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, capacity=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=0.0)


class TestRateLimiter:
    def test_buckets_are_per_ip(self):
        clock = SimulatedClock()
        limiter = RateLimiter(rate_per_ip=1.0, burst=1.0, clock=clock)
        assert limiter.admit("10.0.0.1")[0]
        assert not limiter.admit("10.0.0.1")[0]
        assert limiter.admit("10.0.0.2")[0]  # fresh bucket


class TestFlakiness:
    def test_zero_rate_never_fails(self):
        model = FlakinessModel(0.0)
        assert not any(model.should_fail() for _ in range(100))

    def test_deterministic_given_seed(self):
        a = [FlakinessModel(0.5, seed=42).should_fail() for _ in range(50)]
        b = [FlakinessModel(0.5, seed=42).should_fail() for _ in range(50)]
        assert a == b

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FlakinessModel(1.0)
        with pytest.raises(ValueError):
            FlakinessModel(-0.1)


def echo_handler(path: str):
    if path == "/missing":
        return STATUS_NOT_FOUND, None
    return STATUS_OK, path


class TestFrontend:
    def test_serves_handler_payload(self):
        frontend = HttpFrontend(echo_handler)
        response = frontend.handle(Request("/u/1", "1.2.3.4"))
        assert response.ok
        assert response.payload == "/u/1"
        assert frontend.requests_served == 1

    def test_not_found_passthrough(self):
        frontend = HttpFrontend(echo_handler)
        response = frontend.handle(Request("/missing", "1.2.3.4"))
        assert response.status == STATUS_NOT_FOUND

    def test_throttling_kicks_in(self):
        frontend = HttpFrontend(echo_handler, rate_per_ip=1.0, burst=2.0)
        statuses = [
            frontend.handle(Request("/u/1", "9.9.9.9")).status for _ in range(4)
        ]
        assert STATUS_TOO_MANY_REQUESTS in statuses
        assert frontend.requests_throttled > 0

    def test_throttle_response_carries_retry_after(self):
        frontend = HttpFrontend(echo_handler, rate_per_ip=1.0, burst=1.0)
        frontend.handle(Request("/u/1", "9.9.9.9"))
        response = frontend.handle(Request("/u/1", "9.9.9.9"))
        assert response.status == STATUS_TOO_MANY_REQUESTS
        assert response.retry_after > 0

    def test_error_injection(self):
        frontend = HttpFrontend(echo_handler, error_rate=0.5, seed=3)
        statuses = [
            frontend.handle(Request("/u/1", f"ip-{i}")).status for i in range(60)
        ]
        assert STATUS_SERVER_ERROR in statuses
        assert STATUS_OK in statuses

    def test_clock_shared_with_limiter(self):
        frontend = HttpFrontend(echo_handler, rate_per_ip=1.0, burst=1.0)
        frontend.handle(Request("/u/1", "ip"))
        assert frontend.handle(Request("/u/1", "ip")).status == STATUS_TOO_MANY_REQUESTS
        frontend.clock.advance(1.5)
        assert frontend.handle(Request("/u/1", "ip")).ok

    def test_requests_counted_by_status(self):
        from repro.obs.metrics import Registry

        registry = Registry(enabled=True)
        frontend = HttpFrontend(
            echo_handler, rate_per_ip=1.0, burst=1.0, registry=registry
        )
        frontend.handle(Request("/u/1", "ip"))       # 200
        frontend.handle(Request("/u/1", "ip"))       # throttled
        frontend.clock.advance(2.0)
        frontend.handle(Request("/missing", "ip"))   # 404
        counter = registry.get("http.requests")
        assert counter.value(status=STATUS_OK) == 1
        assert counter.value(status=STATUS_TOO_MANY_REQUESTS) == 1
        assert counter.value(status=STATUS_NOT_FOUND) == 1
        assert counter.value(status=STATUS_SERVER_ERROR) == 0
        # Throttle waits feed the advertised-delay histogram.
        assert registry.get("http.throttle_wait_seconds").series_stats()["count"] == 1


class TestRateLimiterPruning:
    def _limiter(self, prune_interval=300.0):
        clock = SimulatedClock()
        return clock, RateLimiter(
            rate_per_ip=2.0, burst=4.0, clock=clock, prune_interval=prune_interval
        )

    def test_idle_buckets_are_pruned(self):
        clock, limiter = self._limiter()
        for i in range(50):
            limiter.admit(f"ip-{i}")
        assert len(limiter) == 50
        clock.advance(400.0)  # every bucket fully refills
        limiter.admit("fresh-ip")
        assert len(limiter) == 1  # only the bucket just touched survives

    def test_unrefilled_buckets_survive(self):
        clock, limiter = self._limiter(prune_interval=1.0)
        for _ in range(4):
            limiter.admit("busy-ip")  # drained: needs 2s to refill
        clock.advance(1.0)
        limiter.admit("other-ip")  # triggers a prune pass
        assert "busy-ip" in limiter.export_state()["buckets"]

    def test_prune_preserves_admission_behavior(self):
        # The same request sequence against a pruning and a non-pruning
        # limiter must produce identical admission decisions: only
        # fully-refilled buckets (indistinguishable from fresh ones) are
        # ever dropped.
        clock_a = SimulatedClock()
        clock_b = SimulatedClock()
        pruning = RateLimiter(2.0, 3.0, clock_a, prune_interval=5.0)
        control = RateLimiter(2.0, 3.0, clock_b, prune_interval=0.0)
        schedule = [
            (0.0, "a"), (0.1, "a"), (0.1, "b"), (6.0, "a"), (6.0, "a"),
            (6.1, "b"), (12.5, "a"), (12.5, "b"), (12.5, "c"), (30.0, "a"),
            (30.0, "a"), (30.0, "a"), (30.0, "a"), (30.1, "b"),
        ]
        last = 0.0
        results = []
        for when, ip in schedule:
            clock_a.advance(when - last)
            clock_b.advance(when - last)
            last = when
            results.append((pruning.admit(ip), control.admit(ip)))
        assert all(a == b for a, b in results)

    def test_restore_pre_prune_state_roundtrips_bit_identically(self):
        # Regression: a checkpoint taken before a prune pass must restore
        # and re-export bit-identically, and the resumed limiter must
        # prune at the same virtual time the uninterrupted one did.
        clock, limiter = self._limiter(prune_interval=10.0)
        for i in range(8):
            limiter.admit(f"ip-{i}")
        clock.advance(3.0)
        limiter.admit("ip-0")
        exported = limiter.export_state()

        clock2 = SimulatedClock()
        clock2.advance(3.0)
        restored = RateLimiter(2.0, 4.0, clock2, prune_interval=10.0)
        restored.restore_state(exported)
        assert restored.export_state() == exported

        # Drive both past the prune horizon identically: still identical.
        clock.advance(20.0)
        clock2.advance(20.0)
        assert limiter.admit("late-ip") == restored.admit("late-ip")
        assert limiter.export_state() == restored.export_state()

    def test_restore_accepts_legacy_flat_schema(self):
        clock, limiter = self._limiter()
        legacy = {"1.2.3.4": {"tokens": 1.5, "last_refill": 0.0}}
        limiter.restore_state(legacy)
        state = limiter.export_state()
        assert state["buckets"]["1.2.3.4"]["tokens"] == 1.5

    def test_disabled_pruning_never_drops(self):
        clock, limiter = self._limiter(prune_interval=0.0)
        for i in range(20):
            limiter.admit(f"ip-{i}")
        clock.advance(10_000.0)
        limiter.admit("one-more")
        assert len(limiter) == 21


def viewer_echo_handler(path: str, viewer_id=None):
    return STATUS_OK, (path, viewer_id)


class TestViewerThreading:
    def test_viewer_id_passed_to_two_arg_handlers(self):
        frontend = HttpFrontend(viewer_echo_handler)
        response = frontend.handle(Request("/u/1", "ip", viewer_id=42))
        assert response.payload == ("/u/1", 42)

    def test_default_viewer_is_anonymous(self):
        frontend = HttpFrontend(viewer_echo_handler)
        response = frontend.handle(Request("/u/1", "ip"))
        assert response.payload == ("/u/1", None)

    def test_one_arg_handlers_still_work(self):
        frontend = HttpFrontend(echo_handler)
        response = frontend.handle(Request("/u/1", "ip", viewer_id=42))
        assert response.payload == "/u/1"

    def test_service_pages_are_privacy_filtered_by_viewer(self):
        from repro.platform.models import UserProfile
        from repro.platform.privacy import YOUR_CIRCLES
        from repro.platform.service import GooglePlusService

        service = GooglePlusService(open_signup=True)
        for uid in range(3):
            service.register(UserProfile(user_id=uid, name=f"User {uid}"))
        service.update_field(0, "occupation", "engineer", YOUR_CIRCLES)
        service.add_to_circle(0, 1)
        frontend = HttpFrontend(service.handle_path)

        anon = frontend.handle(Request("/u/0", "ip"))
        member = frontend.handle(Request("/u/0", "ip", viewer_id=1))
        outsider = frontend.handle(Request("/u/0", "ip", viewer_id=2))
        assert "occupation" not in anon.payload.fields
        assert member.payload.fields["occupation"] == "engineer"
        assert "occupation" not in outsider.payload.fields
