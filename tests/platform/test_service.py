"""Tests for the Google+ service simulator."""

import pytest

from repro.platform.errors import (
    AlreadyRegisteredError,
    SignupClosedError,
    UnknownUserError,
)
from repro.platform.http import STATUS_NOT_FOUND, STATUS_OK
from repro.platform.models import UserProfile
from repro.platform.privacy import (
    custom,
    EXTENDED_CIRCLES,
    ONLY_YOU,
    PUBLIC,
    YOUR_CIRCLES,
)
from repro.platform.service import GooglePlusService


def profile(user_id: int) -> UserProfile:
    return UserProfile(user_id=user_id, name=f"User {user_id}")


@pytest.fixture
def service() -> GooglePlusService:
    svc = GooglePlusService(open_signup=True)
    for uid in range(5):
        svc.register(profile(uid))
    return svc


class TestSignup:
    def test_field_trial_requires_invitation(self):
        svc = GooglePlusService(open_signup=False)
        with pytest.raises(SignupClosedError):
            svc.register(profile(0))

    def test_invitation_chain(self):
        svc = GooglePlusService(open_signup=True)
        svc.register(profile(0))
        svc.open_signup = False
        svc.register(profile(1), invited_by=0)
        assert 1 in svc

    def test_invitation_from_unknown_user_rejected(self):
        svc = GooglePlusService(open_signup=False)
        with pytest.raises(UnknownUserError):
            svc.register(profile(1), invited_by=99)

    def test_open_signup_needs_no_invite(self):
        svc = GooglePlusService(open_signup=False)
        svc.enable_open_signup()
        svc.register(profile(0))
        assert len(svc) == 1

    def test_duplicate_registration_rejected(self, service):
        with pytest.raises(AlreadyRegisteredError):
            service.register(profile(0))


class TestCircleLinks:
    def test_add_creates_directed_link(self, service):
        assert service.add_to_circle(0, 1) is True
        assert service.followees(0) == [1]
        assert service.followers(1) == [0]
        assert service.followees(1) == []  # no confirmation needed, no reverse

    def test_degrees(self, service):
        service.add_to_circle(0, 1)
        service.add_to_circle(2, 1)
        assert service.in_degree(1) == 2
        assert service.out_degree(0) == 1

    def test_second_circle_same_target_is_not_new(self, service):
        service.add_to_circle(0, 1, "friends")
        assert service.add_to_circle(0, 1, "family") is False
        assert service.in_degree(1) == 1

    def test_remove_drops_follower(self, service):
        service.add_to_circle(0, 1)
        assert service.remove_from_circle(0, 1) is True
        assert service.followers(1) == []

    def test_unknown_users_raise(self, service):
        with pytest.raises(UnknownUserError):
            service.add_to_circle(0, 99)
        with pytest.raises(UnknownUserError):
            service.add_to_circle(99, 0)


class TestFieldVisibility:
    def make_owner(self, service, privacy):
        service.profile(0).set_field("occupation", "Engineer", privacy)

    def test_public_visible_to_anonymous(self, service):
        self.make_owner(service, PUBLIC)
        assert service.can_view_field(0, None, "occupation")

    def test_only_you_hidden_from_everyone_but_owner(self, service):
        self.make_owner(service, ONLY_YOU)
        assert service.can_view_field(0, 0, "occupation")
        assert not service.can_view_field(0, 1, "occupation")
        assert not service.can_view_field(0, None, "occupation")

    def test_your_circles_requires_membership(self, service):
        self.make_owner(service, YOUR_CIRCLES)
        service.add_to_circle(0, 1)
        assert service.can_view_field(0, 1, "occupation")
        assert not service.can_view_field(0, 2, "occupation")

    def test_extended_circles_reaches_friends_of_friends(self, service):
        self.make_owner(service, EXTENDED_CIRCLES)
        service.add_to_circle(0, 1)
        service.add_to_circle(1, 2)
        assert service.can_view_field(0, 2, "occupation")
        assert not service.can_view_field(0, 3, "occupation")

    def test_custom_restricted_to_named_circles(self, service):
        service.profile(0).set_field("occupation", "Engineer", custom("family"))
        service.add_to_circle(0, 1, "family")
        service.add_to_circle(0, 2, "friends")
        assert service.can_view_field(0, 1, "occupation")
        assert not service.can_view_field(0, 2, "occupation")

    def test_name_always_visible(self, service):
        assert service.can_view_field(0, None, "name")

    def test_absent_field_invisible(self, service):
        assert not service.can_view_field(0, 0, "occupation")


class TestProfilePage:
    def test_anonymous_page_has_public_fields_only(self, service):
        service.profile(0).set_field("occupation", "Engineer", PUBLIC)
        service.profile(0).set_field("education", "MIT", ONLY_YOU)
        page = service.profile_page(0)
        assert page.fields == {"occupation": "Engineer"}

    def test_lists_shown_with_true_counts(self, service):
        service.add_to_circle(0, 1)
        service.add_to_circle(2, 0)
        page = service.profile_page(0)
        assert page.out_list.user_ids == (1,)
        assert page.in_list.user_ids == (2,)
        assert page.out_list.declared_count == 1

    def test_private_lists_hidden_from_public(self, service):
        service.profile(0).lists_public = False
        page = service.profile_page(0)
        assert page.in_list is None and page.out_list is None
        # ... but the owner still sees them.
        own_page = service.profile_page(0, viewer_id=0)
        assert own_page.in_list is not None

    def test_display_cap_truncates_but_declares(self):
        svc = GooglePlusService(open_signup=True, circle_display_limit=3)
        for uid in range(6):
            svc.register(profile(uid))
        for follower in range(1, 6):
            svc.add_to_circle(follower, 0)
        page = svc.profile_page(0)
        assert len(page.in_list.user_ids) == 3
        assert page.in_list.declared_count == 5
        assert page.in_list.truncated

    def test_invalid_display_limit(self):
        with pytest.raises(ValueError):
            GooglePlusService(circle_display_limit=0)


class TestContentLayer:
    def test_public_post_visible_to_all(self, service):
        post = service.publish(0, "hello world")
        assert service.can_view_post(post.post_id, None)

    def test_circle_scoped_post(self, service):
        service.add_to_circle(0, 1, "family")
        service.add_to_circle(0, 2, "friends")
        post = service.publish(0, "family news", to_circles=frozenset({"family"}))
        assert service.can_view_post(post.post_id, 1)
        assert not service.can_view_post(post.post_id, 2)
        assert not service.can_view_post(post.post_id, None)
        assert service.can_view_post(post.post_id, 0)  # author

    def test_publish_to_unknown_circle_rejected(self, service):
        with pytest.raises(ValueError):
            service.publish(0, "x", to_circles=frozenset({"nope"}))

    def test_plus_one(self, service):
        post = service.publish(0, "x")
        service.plus_one(1, post.post_id)
        assert 1 in post.plus_ones

    def test_plus_one_unknown_post(self, service):
        with pytest.raises(KeyError):
            service.plus_one(1, 999)

    def test_reshare_references_original(self, service):
        original = service.publish(0, "x")
        reshare = service.publish(1, "RT", reshared_from=original.post_id)
        assert reshare.reshared_from == original.post_id

    def test_reshare_of_unknown_post_rejected(self, service):
        with pytest.raises(KeyError):
            service.publish(1, "RT", reshared_from=42)

    def test_stream_shows_followed_circle_visible_posts(self, service):
        service.add_to_circle(1, 0)  # 1 follows 0
        visible = service.publish(0, "public")
        service.publish(2, "not followed")
        stream = service.stream_for(1)
        assert [p.post_id for p in stream] == [visible.post_id]


class TestHttpHandler:
    def test_profile_path(self, service):
        status, page = service.handle_path("/u/0")
        assert status == STATUS_OK
        assert page.user_id == 0

    @pytest.mark.parametrize("path", ["/u/999", "/other", "/u/abc", ""])
    def test_bad_paths(self, service, path):
        status, page = service.handle_path(path)
        assert status == STATUS_NOT_FOUND
        assert page is None


class TestNotifications:
    def test_circle_add_notifies_target(self, service):
        from repro.platform.service import Notification

        service.add_to_circle(0, 1)
        feed = service.notifications(1)
        assert feed == [Notification(kind="added_to_circle", actor_id=0)]

    def test_readding_same_target_does_not_renotify(self, service):
        service.add_to_circle(0, 1, "friends")
        service.add_to_circle(0, 1, "family")
        assert len(service.notifications(1)) == 1

    def test_plus_one_notifies_author(self, service):
        post = service.publish(0, "hello")
        service.plus_one(1, post.post_id)
        feed = service.notifications(0)
        assert feed[-1].kind == "plus_one"
        assert feed[-1].actor_id == 1
        assert feed[-1].subject_id == post.post_id

    def test_duplicate_plus_one_does_not_renotify(self, service):
        post = service.publish(0, "hello")
        service.plus_one(1, post.post_id)
        service.plus_one(1, post.post_id)
        assert len(service.notifications(0)) == 1

    def test_clear_consumes_feed(self, service):
        service.add_to_circle(0, 1)
        assert service.notifications(1, clear=True)
        assert service.notifications(1) == []
