"""Tests for the Table 2 field registry."""

from repro.platform.fields import (
    COUNTABLE_FIELD_KEYS,
    FIELD_SPECS,
    field_label,
    FieldKind,
    FIELDS_BY_KEY,
    OPTIONAL_FIELD_KEYS,
)


class TestRegistry:
    def test_seventeen_attributes_as_in_table2(self):
        assert len(FIELD_SPECS) == 17

    def test_name_is_first_mandatory_and_unique(self):
        assert FIELD_SPECS[0].key == "name"
        mandatory = [s for s in FIELD_SPECS if s.mandatory]
        assert [s.key for s in mandatory] == ["name"]

    def test_exactly_three_restricted_fields(self):
        restricted = {s.key for s in FIELD_SPECS if s.kind is FieldKind.RESTRICTED}
        assert restricted == {"gender", "relationship", "looking_for"}

    def test_two_contact_blocks(self):
        contacts = {s.key for s in FIELD_SPECS if s.contact}
        assert contacts == {"work_contact", "home_contact"}

    def test_lookup_by_key_is_complete(self):
        assert set(FIELDS_BY_KEY) == {s.key for s in FIELD_SPECS}

    def test_labels_match_paper(self):
        assert field_label("places_lived") == "Places lived"
        assert field_label("bragging_rights") == "Braggin rights"  # sic, as printed
        assert field_label("work_contact") == "Work (contact)"

    def test_countable_keys_exclude_contacts_only(self):
        assert len(COUNTABLE_FIELD_KEYS) == 15
        assert "work_contact" not in COUNTABLE_FIELD_KEYS
        assert "home_contact" not in COUNTABLE_FIELD_KEYS
        assert "name" in COUNTABLE_FIELD_KEYS

    def test_optional_keys_exclude_name_only(self):
        assert len(OPTIONAL_FIELD_KEYS) == 16
        assert "name" not in OPTIONAL_FIELD_KEYS
