"""Tests for the bulk ingest paths: ``register_bulk``, ``add_edges_bulk``
and ``CircleStore.extend``.

The load-bearing property is *state identity*: a bulk call must leave the
service in exactly the state the equivalent scalar-call sequence would —
including every insertion order the crawler observes (circle membership,
flattened contact lists, follower lists, notification feeds).
"""

import numpy as np
import pytest

from repro.platform.circles import OUT_CIRCLE_LIMIT, CircleStore
from repro.platform.errors import CircleLimitError, UnknownUserError
from repro.platform.models import UserProfile
from repro.platform.service import DEFAULT_CIRCLE, GooglePlusService

N_USERS = 40


def profile(user_id: int) -> UserProfile:
    return UserProfile(user_id=user_id, name=f"User {user_id}")


def fresh_service(n: int = N_USERS, exempt=()) -> GooglePlusService:
    svc = GooglePlusService(open_signup=True)
    for uid in range(n):
        svc.register(profile(uid), exempt_from_circle_limit=uid in set(exempt))
    return svc


def service_state(svc: GooglePlusService, n: int = N_USERS):
    """Everything the crawl can observe, with insertion orders intact."""
    state = []
    for uid in range(n):
        account = svc._account(uid)
        state.append(
            (
                uid,
                account.circles.exempt_from_limit,
                list(account.circles.all_members),
                {
                    name: list(members)
                    for name, members in account.circles.members_by_circle.items()
                },
                list(account.followers),
                [(note.kind, note.actor_id) for note in account.notifications],
            )
        )
    return state


@pytest.fixture
def edges():
    """A batch exercising every interesting shape: repeated owners,
    shared targets, the same pair in several circles, and exact
    duplicate (owner, target, circle) triples."""
    rng = np.random.default_rng(3)
    src = rng.integers(0, N_USERS, size=400)
    dst = rng.integers(0, N_USERS, size=400)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    labels = ("friends", "family", "colleagues")
    circles = [labels[i % 3] for i in range(len(src))]
    # Force exact duplicates and same-pair-different-circle cases.
    src = np.concatenate((src, src[:20], src[:10]))
    dst = np.concatenate((dst, dst[:20], dst[:10]))
    circles = circles + circles[:20] + [labels[(i + 1) % 3] for i in range(10)]
    return src, dst, circles


class TestAddEdgesBulkStateIdentity:
    def test_matches_scalar_ingestion(self, edges):
        src, dst, circles = edges
        scalar = fresh_service()
        new_links = 0
        for u, v, c in zip(src.tolist(), dst.tolist(), circles):
            new_links += scalar.add_to_circle(u, v, c)
        bulk = fresh_service()
        assert bulk.add_edges_bulk(src, dst, circles) == new_links
        assert service_state(bulk) == service_state(scalar)

    def test_circle_index_matches_circles_list(self, edges):
        src, dst, circles = edges
        labels = tuple(dict.fromkeys(circles))
        index = np.array([labels.index(c) for c in circles])
        by_list = fresh_service()
        by_list.add_edges_bulk(src, dst, circles)
        by_index = fresh_service()
        by_index.add_edges_bulk(src, dst, circle_index=(labels, index))
        assert service_state(by_index) == service_state(by_list)

    def test_default_circle_when_no_circles_given(self, edges):
        src, dst, _ = edges
        scalar = fresh_service()
        for u, v in zip(src.tolist(), dst.tolist()):
            scalar.add_to_circle(u, v)
        bulk = fresh_service()
        bulk.add_edges_bulk(src, dst)
        assert service_state(bulk) == service_state(scalar)
        assert bulk._account(int(src[0])).circles.circle_names() == [
            DEFAULT_CIRCLE
        ]

    def test_incremental_batches_on_warm_stores(self, edges):
        """A second bulk batch over already-populated stores must merge,
        not clobber."""
        src, dst, circles = edges
        half = len(src) // 2
        scalar = fresh_service()
        for u, v, c in zip(src.tolist(), dst.tolist(), circles):
            scalar.add_to_circle(u, v, c)
        bulk = fresh_service()
        bulk.add_edges_bulk(src[:half], dst[:half], circles[:half])
        bulk.add_edges_bulk(src[half:], dst[half:], circles[half:])
        assert service_state(bulk) == service_state(scalar)

    def test_empty_batch(self):
        svc = fresh_service(5)
        assert svc.add_edges_bulk(np.empty(0, np.int64), np.empty(0, np.int64)) == 0


class TestAddEdgesBulkValidation:
    def test_unknown_source_rejected(self):
        svc = fresh_service(5)
        with pytest.raises(UnknownUserError):
            svc.add_edges_bulk(np.array([99]), np.array([1]))

    def test_unknown_target_rejected(self):
        svc = fresh_service(5)
        with pytest.raises(UnknownUserError):
            svc.add_edges_bulk(np.array([1]), np.array([-3]))

    def test_self_edge_rejected(self):
        svc = fresh_service(5)
        with pytest.raises(ValueError, match="themselves"):
            svc.add_edges_bulk(np.array([1, 2]), np.array([3, 2]))

    def test_circles_and_circle_index_exclusive(self):
        svc = fresh_service(5)
        with pytest.raises(ValueError, match="not both"):
            svc.add_edges_bulk(
                np.array([1]),
                np.array([2]),
                ["friends"],
                circle_index=(("friends",), np.array([0])),
            )

    def test_length_mismatches_rejected(self):
        svc = fresh_service(5)
        with pytest.raises(ValueError):
            svc.add_edges_bulk(np.array([1, 2]), np.array([3]))
        with pytest.raises(ValueError):
            svc.add_edges_bulk(np.array([1, 2]), np.array([3, 4]), ["friends"])
        with pytest.raises(ValueError, match="out of label range"):
            svc.add_edges_bulk(
                np.array([1]), np.array([2]), circle_index=(("a",), np.array([4]))
            )

    def test_circle_cap_enforced(self):
        limit = OUT_CIRCLE_LIMIT
        svc = GooglePlusService(open_signup=True)
        for uid in range(limit + 2):
            svc.register(profile(uid))
        targets = np.arange(1, limit + 2)
        with pytest.raises(CircleLimitError):
            svc.add_edges_bulk(np.zeros(len(targets), np.int64), targets)

    def test_exempt_owner_escapes_cap(self):
        limit = OUT_CIRCLE_LIMIT
        svc = GooglePlusService(open_signup=True)
        for uid in range(limit + 2):
            svc.register(profile(uid), exempt_from_circle_limit=uid == 0)
        targets = np.arange(1, limit + 2)
        assert svc.add_edges_bulk(np.zeros(len(targets), np.int64), targets) == len(
            targets
        )


class TestRegisterBulk:
    def test_matches_scalar_registration(self):
        exempt = {3, 7}
        scalar = GooglePlusService(open_signup=True)
        for uid in range(10):
            scalar.register(profile(uid), exempt_from_circle_limit=uid in exempt)
        bulk = GooglePlusService(open_signup=True)
        assert (
            bulk.register_bulk(
                (profile(uid) for uid in range(10)), exempt_ids=exempt
            )
            == 10
        )
        assert service_state(bulk, 10) == service_state(scalar, 10)

    def test_field_trial_requires_inviters(self):
        svc = GooglePlusService(open_signup=True)
        svc.register(profile(0))
        svc.open_signup = False
        svc.register_bulk([profile(1), profile(2)], invited_by=[0, 0])
        assert len(svc) == 3
        with pytest.raises(UnknownUserError):
            svc.register_bulk([profile(3)], invited_by=[99])


class TestCircleStoreExtend:
    def test_matches_add_sequence(self):
        a = CircleStore(0)
        b = CircleStore(0)
        targets = [5, 3, 5, 9, 3, 1]
        new_a = [t for t in targets if a.add(t, "friends")]
        new_b = b.extend(targets, "friends")
        assert new_b == list(dict.fromkeys(new_a))
        assert list(a.all_members) == list(b.all_members)
        assert {k: list(v) for k, v in a.members_by_circle.items()} == {
            k: list(v) for k, v in b.members_by_circle.items()
        }

    def test_failing_batch_mutates_nothing(self):
        store = CircleStore(0)
        store.add(1)
        with pytest.raises(ValueError):
            store.extend([2, 3, 0])  # self-add fails the whole batch
        assert list(store.all_members) == [1]

    def test_cap_counts_distinct_new_members(self):
        store = CircleStore(0)
        for t in range(1, OUT_CIRCLE_LIMIT + 1):
            store.add(t)
        # Re-adding existing members stays legal at the cap...
        store.extend([1, 2, 3], "inner")
        # ...but one genuinely new member trips it, atomically.
        with pytest.raises(CircleLimitError):
            store.extend([1, OUT_CIRCLE_LIMIT + 1])
        assert OUT_CIRCLE_LIMIT + 1 not in store.all_members
