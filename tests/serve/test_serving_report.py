"""The serving section rides the live report: a mixed crawl+traffic
campaign run with telemetry publishes a schema-valid SLO section into
``run_report.json`` and the dashboard renders it."""

from repro.obs.live import LiveTelemetry
from repro.obs.live.dashboard import load_report_document, render_report
from repro.obs.metrics import Registry
from repro.serve import validate_serving_section
from repro.store.campaign import CampaignConfig, CrawlCampaign


def run_live_campaign(tmp_path, traffic):
    config = CampaignConfig(
        n_users=500,
        seed=3,
        checkpoint_every_pages=200,
        traffic=traffic,
    )
    campaign = CrawlCampaign(tmp_path / "camp", config)
    report_path = tmp_path / "run_report.json"
    registry = Registry(enabled=True)
    live = LiveTelemetry(report_path, registry=registry, epoch_every_pages=200)
    campaign.run(registry=registry, live=live)
    return load_report_document(report_path)


def test_live_report_carries_validated_serving_section(tmp_path):
    document = run_live_campaign(
        tmp_path, {"n_clients": 25, "seed": 1, "think_mean": 0.02}
    )
    serving = document["extra"]["serving"]
    assert validate_serving_section(serving) == []
    assert serving["requests"]["total"] > 0
    assert serving["cache"]["hits"] > 0
    assert serving["availability"]["target"] == 0.999

    text = render_report(document)
    assert "serving" in text
    assert "page cache: hit rate" in text
    assert "burn rate" in text


def test_report_without_traffic_renders_without_serving_block(tmp_path):
    document = run_live_campaign(tmp_path, None)
    assert "serving" not in document["extra"]
    text = render_report(document)
    assert "crawl status" in text
    assert "page cache" not in text
