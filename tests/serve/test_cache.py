"""Differential proofs for the privacy-aware page cache.

The load-bearing property: for every ``(owner, viewer)`` pair,
``render_for_class(class_of(owner, viewer))`` is byte-identical to
``service.profile_page(owner, viewer)`` — cached pages are the uncached
pages, always.  Plus the exact-invalidation contract for every mutation
kind.
"""

import pytest

from repro.obs.metrics import Registry
from repro.platform.models import UserProfile
from repro.platform.privacy import (
    custom,
    EXTENDED_CIRCLES,
    ONLY_YOU,
    PUBLIC,
    YOUR_CIRCLES,
)
from repro.platform.service import GooglePlusService
from repro.serve import (
    ANON_CLASS,
    PageCache,
    SELF_CLASS,
    ViewerClasser,
    page_to_bytes,
    render_for_class,
)
from repro.serve.loadgen import EventClock


def build_service() -> GooglePlusService:
    """A small world exercising every visibility level and both list modes."""
    service = GooglePlusService(open_signup=True)
    for uid in range(8):
        service.register(UserProfile(user_id=uid, name=f"User {uid}"))
    # Owner 0: one field per visibility level.
    service.update_field(0, "gender", "female", PUBLIC)
    service.update_field(0, "occupation", "engineer", YOUR_CIRCLES)
    service.update_field(0, "education", "stanford", EXTENDED_CIRCLES)
    service.update_field(0, "introduction", "hello vips", custom("vips"))
    service.update_field(0, "employment", "secret corp", ONLY_YOU)
    # Owner 1 hides the circle lists.
    service.update_field(1, "occupation", "artist", YOUR_CIRCLES)
    service.set_lists_public(1, False)
    # Circles: 0 -> {1 (vips), 2}; 1 -> {0}; 2 -> {3}; 4 -> {0}.
    service.add_to_circle(0, 1, "vips")
    service.add_to_circle(0, 2)
    service.add_to_circle(1, 0)
    service.add_to_circle(2, 3)
    service.add_to_circle(4, 0)
    return service


def all_viewers(service):
    return [None] + sorted(service.user_ids())


def assert_equivalent(service, classer, owner_id, viewer_id):
    expected = page_to_bytes(service.profile_page(owner_id, viewer_id))
    key = classer.class_of(owner_id, viewer_id)
    got = page_to_bytes(render_for_class(service, owner_id, key))
    assert got == expected, (owner_id, viewer_id, key)


class TestViewerClasser:
    def test_anon_and_self_classes(self):
        service = build_service()
        classer = ViewerClasser(service)
        assert classer.class_of(0, None) == ANON_CLASS
        assert classer.class_of(0, 0) == SELF_CLASS

    def test_member_class_bits(self):
        service = build_service()
        classer = ViewerClasser(service)
        # 1 is in 0's circles, including the CUSTOM-referenced "vips".
        assert classer.class_of(0, 1) == ("m", True, True, ("vips",))
        # 3 is reachable only through 0's contact 2: extended, not direct.
        assert classer.class_of(0, 3) == ("m", False, True, ())
        # 5 is a stranger.
        assert classer.class_of(0, 5) == ("m", False, False, ())

    def test_exhaustive_render_equivalence(self):
        service = build_service()
        classer = ViewerClasser(service)
        for owner_id in sorted(service.user_ids()):
            for viewer_id in all_viewers(service):
                assert_equivalent(service, classer, owner_id, viewer_id)

    def test_equivalence_holds_through_mutations(self):
        service = build_service()
        classer = ViewerClasser(service)
        mutations = [
            lambda: service.add_to_circle(2, 5),
            lambda: service.remove_from_circle(0, 2),
            lambda: service.update_field(0, "occupation", "manager", PUBLIC),
            lambda: service.set_lists_public(1, True),
            lambda: service.add_to_circle(0, 6, "vips"),
        ]
        cache = PageCache(service, EventClock(), registry=Registry(enabled=False))
        classer = cache._classer
        for mutate in mutations:
            mutate()
            for owner_id in sorted(service.user_ids()):
                for viewer_id in all_viewers(service):
                    assert_equivalent(service, classer, owner_id, viewer_id)


class TestEquivalenceOnSyntheticWorld:
    def test_sampled_pairs_byte_identical(self, small_world):
        service = small_world.service
        classer = ViewerClasser(service)
        users = sorted(service.user_ids())
        owners = users[:25] + users[-5:] + [small_world.seed_user_id()]
        viewers = [None] + users[:10] + users[::250]
        for owner_id in owners:
            for viewer_id in viewers:
                assert_equivalent(service, classer, owner_id, viewer_id)


def make_cache(service, **kwargs) -> PageCache:
    kwargs.setdefault("registry", Registry(enabled=False))
    kwargs.setdefault("clock", EventClock())
    clock = kwargs.pop("clock")
    return PageCache(service, clock, **kwargs)


class TestCacheLookups:
    def test_hit_returns_identical_page(self):
        service = build_service()
        cache = make_cache(service)
        first, hit1 = cache.lookup(0, 1)
        second, hit2 = cache.lookup(0, 1)
        assert (hit1, hit2) == (False, True)
        assert page_to_bytes(first) == page_to_bytes(second)
        assert page_to_bytes(first) == page_to_bytes(service.profile_page(0, 1))

    def test_viewers_in_same_class_share_an_entry(self):
        service = build_service()
        service.add_to_circle(0, 6)
        cache = make_cache(service)
        cache.lookup(0, 2)  # in circles, not in "vips"
        _, hit = cache.lookup(0, 6)  # same class
        assert hit is True
        assert len(cache) == 1

    def test_lru_eviction(self):
        service = build_service()
        cache = make_cache(service, capacity=2)
        cache.lookup(0, None)
        cache.lookup(1, None)
        cache.lookup(2, None)  # evicts (0, anon)
        assert len(cache) == 2
        assert (0, ANON_CLASS) not in cache
        assert cache.evictions == 1

    def test_lookup_refreshes_lru_order(self):
        service = build_service()
        cache = make_cache(service, capacity=2)
        cache.lookup(0, None)
        cache.lookup(1, None)
        cache.lookup(0, None)  # refresh: (1, anon) is now oldest
        cache.lookup(2, None)
        assert (0, ANON_CLASS) in cache
        assert (1, ANON_CLASS) not in cache

    def test_ttl_eviction(self):
        service = build_service()
        clock = EventClock()
        cache = make_cache(service, clock=clock, ttl=1.0)
        cache.lookup(0, None)
        clock.advance(2.0)
        _, hit = cache.lookup(0, None)
        assert hit is False
        assert cache.evictions == 1


class TestExactInvalidation:
    def seed_entries(self, service, cache):
        for owner_id in (0, 1, 2, 3):
            for viewer_id in (None, owner_id, 5):
                cache.lookup(owner_id, viewer_id)
        return set(cache.keys())

    def test_circle_add_drops_exactly_both_owners(self):
        service = build_service()
        cache = make_cache(service)
        before = self.seed_entries(service, cache)
        service.add_to_circle(2, 6)
        after = set(cache.keys())
        # Owners 2 and 6 show lists: every class of both is dropped; 6
        # had no entries.  Nobody else is touched.
        assert before - after == {k for k in before if k[0] == 2}
        assert after == {k for k in before if k[0] != 2}

    def test_hidden_lists_drop_only_the_self_page(self):
        service = build_service()
        cache = make_cache(service)
        self.seed_entries(service, cache)
        assert (1, SELF_CLASS) in cache
        anon_before = (1, ANON_CLASS) in cache
        service.add_to_circle(1, 7)  # owner 1 hides lists
        assert (1, SELF_CLASS) not in cache
        assert ((1, ANON_CLASS) in cache) == anon_before

    def test_profile_mutation_drops_owner_only(self):
        service = build_service()
        cache = make_cache(service)
        before = self.seed_entries(service, cache)
        service.update_field(3, "occupation", "pilot", PUBLIC)
        after = set(cache.keys())
        assert before - after == {k for k in before if k[0] == 3}

    def test_posts_and_plus_ones_do_not_invalidate(self):
        service = build_service()
        cache = make_cache(service)
        before = self.seed_entries(service, cache)
        post = service.publish(0, "hello world")
        service.plus_one(1, post.post_id)
        assert set(cache.keys()) == before
        assert cache.invalidations == 0

    def test_bulk_edges_clears_everything(self):
        import numpy as np

        service = build_service()
        cache = make_cache(service)
        self.seed_entries(service, cache)
        service.add_edges_bulk(np.array([5, 6]), np.array([7, 5]))
        assert len(cache) == 0

    def test_two_hop_mutation_remaps_extended_class(self):
        # 3 sees 0's EXTENDED field only via 0's contact 2.  When 2 drops
        # 3, viewer 3's class w.r.t. owner 0 must be re-derived even
        # though owner 0's own circles never changed.
        service = build_service()
        cache = make_cache(service)
        page, _ = cache.lookup(0, 3)
        assert "education" in page.fields
        service.remove_from_circle(2, 3)
        page, _ = cache.lookup(0, 3)
        assert "education" not in page.fields
        assert page_to_bytes(page) == page_to_bytes(service.profile_page(0, 3))

    def test_serving_stays_correct_through_mutation_storm(self):
        service = build_service()
        cache = make_cache(service)
        checks = [(o, v) for o in range(8) for v in all_viewers(service)]
        storm = [
            lambda: service.add_to_circle(5, 0),
            lambda: service.update_field(0, "introduction", "new", custom("vips")),
            lambda: service.remove_from_circle(0, 1),
            lambda: service.set_lists_public(1, True),
            lambda: service.add_to_circle(1, 3, "vips"),
            lambda: service.update_field(1, "occupation", "sculptor", EXTENDED_CIRCLES),
        ]
        for mutate in storm:
            for owner_id, viewer_id in checks:
                cache.lookup(owner_id, viewer_id)
            mutate()
            for owner_id, viewer_id in checks:
                page, _ = cache.lookup(owner_id, viewer_id)
                expected = service.profile_page(owner_id, viewer_id)
                assert page_to_bytes(page) == page_to_bytes(expected), (
                    owner_id,
                    viewer_id,
                )


class TestRandomizedMutationStorm:
    """Cached bytes == uncached bytes under a seeded random mutation storm.

    Heavy on removals — including circle-scoped removals and removals of
    never-members — because stale memoized circle intersections after
    ``CircleStore.remove`` are exactly the regression this guards
    against. Runs on both backing stores: the columnar view must
    invalidate identically to the dict reference.
    """

    @pytest.mark.parametrize("store", ["dict", "columnar"])
    def test_storm_with_removals_stays_byte_identical(self, store):
        import random

        from repro.synth import build_world, WorldConfig

        world = build_world(
            WorldConfig(n_users=600, seed=13, engine="fast", store=store)
        )
        service = world.service
        cache = make_cache(service)
        rng = random.Random(99)
        users = sorted(service.user_ids())
        owners = rng.sample(users, 12)
        viewers = [None] + rng.sample(users, 6) + owners[:3]
        checks = [(o, v) for o in owners for v in viewers]
        privacies = [PUBLIC, YOUR_CIRCLES, EXTENDED_CIRCLES, ONLY_YOU]

        def mutate_once():
            kind = rng.randrange(10)
            u = rng.choice(owners)
            if kind < 4:  # removals dominate the storm
                followees = service.followees(u)
                if kind == 0 or not followees:
                    # Never-member (or empty) removal: must be a clean no-op.
                    service.remove_from_circle(u, rng.choice(users))
                elif kind == 1:
                    circles = service._account(u).circles
                    v = rng.choice(followees)
                    service.remove_from_circle(
                        u, v, rng.choice(circles.circles_of(v))
                    )
                else:
                    service.remove_from_circle(u, rng.choice(followees))
            elif kind < 7:
                v = rng.choice(users)
                if v != u:
                    service.add_to_circle(u, v, rng.choice(("friends", "vips")))
            elif kind < 9:
                service.update_field(
                    u,
                    rng.choice(("occupation", "introduction", "education")),
                    f"value-{rng.randrange(1000)}",
                    custom("vips") if kind == 8 else rng.choice(privacies),
                )
            else:
                service.set_lists_public(u, bool(rng.randrange(2)))

        for _ in range(40):
            for owner_id, viewer_id in checks:
                cache.lookup(owner_id, viewer_id)  # prime, so staleness shows
            mutate_once()
            for owner_id, viewer_id in checks:
                page, _ = cache.lookup(owner_id, viewer_id)
                expected = service.profile_page(owner_id, viewer_id)
                assert page_to_bytes(page) == page_to_bytes(expected), (
                    store,
                    owner_id,
                    viewer_id,
                )


class TestCacheState:
    def test_export_restore_roundtrip(self):
        service = build_service()
        clock = EventClock()
        cache = make_cache(service, clock=clock)
        for owner_id in (0, 1, 2):
            for viewer_id in (None, 1, owner_id):
                cache.lookup(owner_id, viewer_id)
        clock.advance(1.0)
        cache.lookup(3, None)
        exported = cache.export_state()

        replica_service = build_service()
        replica = make_cache(replica_service, clock=EventClock())
        replica.restore_state(exported)
        assert replica.export_state() == exported
        assert list(replica.keys()) == list(cache.keys())
        for key in cache.keys():
            original = cache._entries[key][0]
            restored = replica._entries[key][0]
            assert page_to_bytes(original) == page_to_bytes(restored)

    def test_restored_lru_order_matches(self):
        service = build_service()
        cache = make_cache(service, capacity=3)
        cache.lookup(0, None)
        cache.lookup(1, None)
        cache.lookup(0, None)  # (1, anon) oldest
        exported = cache.export_state()

        replica = make_cache(build_service(), capacity=3)
        replica.restore_state(exported)
        replica.lookup(2, None)
        replica.lookup(3, None)  # evicts (1, anon) first
        assert (0, ANON_CLASS) in replica
        assert (1, ANON_CLASS) not in replica

    def test_invalid_parameters(self):
        service = build_service()
        with pytest.raises(ValueError):
            make_cache(service, capacity=0)
        with pytest.raises(ValueError):
            make_cache(service, ttl=-1.0)
