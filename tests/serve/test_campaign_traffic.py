"""Mixed crawl+traffic campaigns: the differential proofs.

The acceptance bar for the serving layer:

* with the page cache enabled, every response body in a seeded mixed
  crawl+traffic campaign is byte-identical to the uncached run —
  including across mid-run circle/profile mutations and a kill/resume;
* the crawler's output is unperturbed by read-only traffic;
* a killed mixed campaign resumes bit-identically (trace digest, SLO
  tallies, cache state, crawler dataset).
"""

import pytest

from repro.obs.metrics import Registry
from repro.serve import EventClock, build_traffic
from repro.store.campaign import (
    CampaignConfig,
    CrawlCampaign,
    SimulatedCrash,
    dataset_diff,
)
from repro.synth import WorldConfig, build_world

USERS = 1_000
SEED = 33

#: Chaos on both transports: the crawler fleet rides flaky-fleet while
#: the serving stack degrades under serving-rush (no corrupt_pages on
#: the serving side — bodies must stay byte-comparable).
TRAFFIC = {
    "n_clients": 60,
    "seed": 4,
    "mix": "mixed",
    "think_mean": 0.02,
    "record_bodies": True,
    "keep_trace": True,
    "faults": "serving-rush",
}


def campaign_config(**overrides) -> CampaignConfig:
    base = dict(
        n_users=USERS,
        seed=SEED,
        checkpoint_every_pages=150,
        faults={"seed": 5, "rules": [
            {"kind": "error_burst", "start": 0.2, "end": 0.8, "rate": 0.3,
             "retry_after": 0.01},
        ]},
        traffic=dict(TRAFFIC),
    )
    base.update(overrides)
    return CampaignConfig(**base)


def run_campaign(tmp_path, name, config, **run_kwargs):
    campaign = CrawlCampaign(tmp_path / name, config)
    dataset = campaign.run(registry=Registry(enabled=False), **run_kwargs)
    return campaign, dataset


def body_projection(traffic):
    """(path, status, body-digest) per request — latency-independent."""
    return [(r[3], r[4], r[6]) for r in traffic.trace]


class TestChaosDifferential:
    @pytest.fixture(scope="class")
    def arms(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("arms")
        cached_cfg = campaign_config()
        uncached_cfg = campaign_config(
            traffic={**TRAFFIC, "cache": False},
        )
        cached = run_campaign(tmp_path, "cached", cached_cfg)
        uncached = run_campaign(tmp_path, "uncached", uncached_cfg)
        return cached, uncached

    def test_bodies_byte_identical_cache_on_vs_off(self, arms):
        (cached, _), (uncached, _) = arms
        a, b = cached.last_traffic, uncached.last_traffic
        assert a.n_requests == b.n_requests > 500
        assert a.cache is not None and b.cache is None
        assert a.cache.hits > 0
        # The mixed mix mutated circles mid-run on both arms.
        assert any(k.startswith("circle") for k, *_ in a.stack.mutation_log)
        assert a.stack.mutation_log == b.stack.mutation_log
        assert body_projection(a) == body_projection(b)

    def test_crawler_output_identical_across_cache_arms(self, arms):
        (_, cached_ds), (_, uncached_ds) = arms
        assert dataset_diff(cached_ds, uncached_ds) == []

    def test_chaos_engaged(self, arms):
        (cached, _), _ = arms
        statuses = cached.last_traffic.status_counts
        assert any(code != "200" for code in statuses), statuses


class TestKillResume:
    def test_mixed_campaign_resumes_bit_identically(self, tmp_path):
        config = campaign_config()
        straight, straight_ds = run_campaign(tmp_path, "straight", config)

        crashed = CrawlCampaign(tmp_path / "crashed", config)
        with pytest.raises(SimulatedCrash):
            crashed.run(registry=Registry(enabled=False), crash_after_pages=400)
        resumed, resumed_ds = run_campaign(tmp_path, "crashed", config)

        assert dataset_diff(straight_ds, resumed_ds) == []
        t_straight = straight.last_traffic
        t_resumed = resumed.last_traffic
        assert t_resumed.trace_digest == t_straight.trace_digest
        assert t_resumed.n_requests == t_straight.n_requests
        assert t_resumed.slo.export_state() == t_straight.slo.export_state()
        assert (
            t_resumed.cache.export_state() == t_straight.cache.export_state()
        )


class TestReadOnlyTrafficLeavesCrawlUntouched:
    def test_dataset_bit_identical_to_no_traffic_run(self, tmp_path):
        quiet_cfg = campaign_config(faults=None, traffic=None)
        busy_cfg = campaign_config(
            faults=None,
            traffic={**TRAFFIC, "mix": "read_heavy", "faults": None},
        )
        _, quiet_ds = run_campaign(tmp_path, "quiet", quiet_cfg)
        busy, busy_ds = run_campaign(tmp_path, "busy", busy_cfg)
        assert busy.last_traffic.n_requests > 0
        assert dataset_diff(quiet_ds, busy_ds) == []


class TestProfileMutationDifferential:
    def test_bodies_identical_across_explicit_profile_mutations(self):
        # Interleave load with profile-field / list-visibility mutations
        # applied identically on both arms; cached bodies must track.
        from repro.platform.privacy import PUBLIC, YOUR_CIRCLES

        def build(cache):
            world = build_world(WorldConfig(n_users=600, seed=9))
            clock = EventClock(world.clock.now())
            world.clock = clock
            traffic = build_traffic(
                world.service,
                clock,
                {
                    "n_clients": 40,
                    "seed": 2,
                    "mix": "mixed",
                    "think_mean": 0.02,
                    "cache": {} if cache else False,
                    "record_bodies": True,
                    "keep_trace": True,
                },
                registry=Registry(enabled=False),
            )
            return world, traffic

        arms = [build(True), build(False)]
        hot = arms[0][1]._ranking[:3]  # most-browsed owners on both arms
        for step in range(4):
            for world, traffic in arms:
                traffic.run_requests(150)
                for owner in hot:
                    world.service.update_field(
                        owner,
                        "occupation",
                        f"occupation-{step}",
                        YOUR_CIRCLES if step % 2 else PUBLIC,
                    )
                world.service.set_lists_public(hot[step % 3], step % 2 == 0)
        a, b = arms[0][1], arms[1][1]
        assert a.cache.invalidations > 0
        assert body_projection(a) == body_projection(b)
