"""Load-generator determinism: the trace is a pure function of the seed,
the event clock dispatches exactly, and an exported generator resumes
bit-identically on a rebuilt world."""

import pytest

from repro.obs.metrics import Registry
from repro.serve import (
    BehaviorMix,
    EventClock,
    MIXED,
    READ_HEAVY,
    build_traffic,
)
from repro.synth import WorldConfig, build_world

USERS = 1_200
SEED = 21


def make_traffic(
    *, cache=True, n_clients=60, seed=SEED, mix="mixed", record_bodies=True, **extra
):
    world = build_world(WorldConfig(n_users=USERS, seed=SEED))
    clock = EventClock(world.clock.now())
    world.clock = clock
    config = {
        "n_clients": n_clients,
        "seed": seed,
        "mix": mix,
        "think_mean": 0.05,
        "cache": {} if cache else False,
        "record_bodies": record_bodies,
        "keep_trace": True,
        **extra,
    }
    return build_traffic(world.service, clock, config, registry=Registry(enabled=False))


class TestEventClock:
    def test_dispatches_in_time_order_at_exact_times(self):
        clock = EventClock()
        seen = []
        clock.schedule(2.0, lambda now: seen.append(("b", now)))
        clock.schedule(1.0, lambda now: seen.append(("a", now)))
        clock.schedule(5.0, lambda now: seen.append(("late", now)))
        clock.advance(3.0)
        assert seen == [("a", 1.0), ("b", 2.0)]
        assert clock.now() == 3.0
        assert clock.pending() == 1

    def test_tie_break_is_stable_across_insertion_order(self):
        order_a, order_b = [], []
        clock_a, clock_b = EventClock(), EventClock()
        clock_a.schedule(1.0, lambda now: order_a.append(1), tie=1)
        clock_a.schedule(1.0, lambda now: order_a.append(0), tie=0)
        clock_b.schedule(1.0, lambda now: order_b.append(0), tie=0)
        clock_b.schedule(1.0, lambda now: order_b.append(1), tie=1)
        clock_a.advance(2.0)
        clock_b.advance(2.0)
        assert order_a == order_b == [0, 1]

    def test_callbacks_scheduled_during_dispatch_run_in_same_advance(self):
        clock = EventClock()
        seen = []

        def first(now):
            seen.append(("first", now))
            clock.schedule(now + 0.5, lambda t: seen.append(("chained", t)))

        clock.schedule(1.0, first)
        clock.advance(2.0)
        assert seen == [("first", 1.0), ("chained", 1.5)]

    def test_restore_never_dispatches(self):
        clock = EventClock()
        fired = []
        clock.schedule(1.0, fired.append)
        clock.restore(5.0)
        assert fired == []
        assert clock.pending() == 1

    def test_cannot_schedule_in_the_past(self):
        clock = EventClock(10.0)
        with pytest.raises(ValueError):
            clock.schedule(9.0, lambda now: None)

    def test_cannot_rewind(self):
        with pytest.raises(ValueError):
            EventClock().advance(-0.1)


class TestBehaviorMix:
    def test_rejects_negative_and_zero_weights(self):
        with pytest.raises(ValueError):
            BehaviorMix(browse=-0.1)
        with pytest.raises(ValueError):
            BehaviorMix(0.0, 0.0, 0.0, 0.0, 0.0)

    def test_cumulative_reaches_one(self):
        assert MIXED.cumulative()[-1][1] == 1.0
        assert READ_HEAVY.circle_edit == 0.0


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = make_traffic()
        b = make_traffic()
        a.run_requests(800)
        b.run_requests(800)
        assert a.trace == b.trace
        assert a.trace_digest == b.trace_digest
        assert a.slo.export_state() == b.slo.export_state()

    def test_different_seed_different_trace(self):
        a = make_traffic()
        b = make_traffic(seed=SEED + 1)
        a.run_requests(200)
        b.run_requests(200)
        assert a.trace_digest != b.trace_digest

    def test_ops_follow_the_mix(self):
        traffic = make_traffic(mix="read_heavy")
        traffic.run_requests(1_000)
        assert "circle_edit" not in traffic.op_counts
        assert traffic.op_counts["browse"] > traffic.op_counts["plus_one"]
        assert not any(
            kind.startswith("circle") for kind, *_ in traffic.stack.mutation_log
        )

    def test_cache_on_off_serve_identical_bodies(self):
        cached = make_traffic(cache=True)
        uncached = make_traffic(cache=False)
        cached.run_requests(600)
        uncached.run_requests(600)
        assert cached.cache.hits > 0
        project = lambda t: [(r[3], r[4], r[6]) for r in t.trace]  # noqa: E731
        assert project(cached) == project(uncached)


class TestExportRestore:
    def test_resume_is_bit_identical(self):
        straight = make_traffic()
        straight.run_requests(500)

        interrupted = make_traffic()
        interrupted.run_requests(200)
        exported = interrupted.export_state()

        resumed = make_traffic()  # fresh world, fresh generator
        resumed.restore_state(exported)
        assert resumed.export_state() == exported
        resumed.run_requests(straight.n_requests - resumed.n_requests)
        assert resumed.n_requests == straight.n_requests
        assert resumed.trace_digest == straight.trace_digest
        assert resumed.slo.export_state() == straight.slo.export_state()
        assert resumed.cache.export_state() == straight.cache.export_state()

    def test_client_count_mismatch_rejected(self):
        a = make_traffic()
        b = make_traffic(n_clients=10)
        with pytest.raises(ValueError):
            b.restore_state(a.export_state())

    def test_schema_mismatch_rejected(self):
        traffic = make_traffic()
        state = traffic.export_state()
        state["schema"] = 99
        with pytest.raises(ValueError):
            traffic.restore_state(state)


class TestValidation:
    def test_bad_mix_name_rejected(self):
        with pytest.raises(ValueError):
            make_traffic(mix="nope")

    def test_zipf_must_be_heavy_tailed(self):
        with pytest.raises(ValueError):
            make_traffic(zipf_s=1.0)

    def test_think_mean_positive(self):
        with pytest.raises(ValueError):
            make_traffic(think_mean=0.0)
