"""SLO accounting: budget math, section schema, kill-switch behavior."""

import pytest

from repro.obs.metrics import Registry
from repro.serve import SERVING_SCHEMA_VERSION, SLOTracker, validate_serving_section


def tracker(**kwargs) -> SLOTracker:
    kwargs.setdefault("registry", Registry(enabled=True))
    return SLOTracker(**kwargs)


class TestAccounting:
    def test_counts_by_op_and_status(self):
        slo = tracker()
        slo.observe("browse", 200, latency=0.001)
        slo.observe("browse", 200, latency=0.002)
        slo.observe("stream", 503)
        assert slo.total == 3
        assert slo.by_op == {"browse": 2, "stream": 1}
        assert slo.by_status == {"200": 2, "503": 1}
        assert slo.errors == 1

    def test_throttles_are_not_errors(self):
        slo = tracker()
        slo.observe("browse", 429)
        slo.observe("browse", 200, latency=0.001)
        assert slo.throttled == 1
        assert slo.errors == 0
        section = slo.section()
        # 429s are excluded from the availability denominator entirely.
        assert section["availability"]["observed"] == 1.0

    def test_404_is_not_an_error(self):
        slo = tracker()
        slo.observe("browse", 404)
        assert slo.errors == 0

    def test_burn_rate_math(self):
        slo = tracker(availability_target=0.9)  # budget = 10%
        for _ in range(95):
            slo.observe("browse", 200, latency=0.001)
        for _ in range(5):
            slo.observe("browse", 503)
        section = slo.section()
        assert section["availability"]["observed"] == pytest.approx(0.95)
        assert section["availability"]["error_rate"] == pytest.approx(0.05)
        assert section["availability"]["burn_rate"] == pytest.approx(0.5)

    def test_cache_hit_tally(self):
        slo = tracker()
        slo.observe("browse", 200, latency=0.001, hit=True)
        slo.observe("browse", 200, latency=0.001, hit=False)
        slo.observe("stream", 200, latency=0.001, hit=None)
        assert (slo.hits, slo.misses) == (1, 1)

    def test_quantiles_per_op_and_overall(self):
        slo = tracker()
        for _ in range(100):
            slo.observe("browse", 200, latency=0.001)
        for _ in range(100):
            slo.observe("stream", 200, latency=0.1)
        browse_p50 = slo.quantile(0.5, op="browse")
        overall_p99 = slo.quantile(0.99)
        assert browse_p50 == pytest.approx(0.001, rel=0.5)
        assert overall_p99 == pytest.approx(0.1, rel=0.5)
        assert overall_p99 > browse_p50

    def test_validation(self):
        with pytest.raises(ValueError):
            tracker(availability_target=1.0)
        with pytest.raises(ValueError):
            tracker(availability_target=0.0)


class TestSection:
    def test_section_validates(self):
        slo = tracker()
        slo.observe("browse", 200, latency=0.001, hit=False)
        section = slo.section()
        assert section["serving_schema_version"] == SERVING_SCHEMA_VERSION
        assert validate_serving_section(section) == []
        assert "browse" in section["latency"]["by_op"]

    def test_empty_tracker_section_validates(self):
        section = tracker().section()
        assert validate_serving_section(section) == []
        assert section["availability"]["observed"] is None
        assert section["latency"]["p50"] is None

    def test_validate_rejects_junk(self):
        assert validate_serving_section(None)
        assert validate_serving_section({})
        newer = tracker().section()
        newer["serving_schema_version"] = SERVING_SCHEMA_VERSION + 1
        assert any("newer" in p for p in validate_serving_section(newer))

    def test_disabled_registry_still_counts(self):
        slo = tracker(registry=Registry(enabled=False))
        for _ in range(10):
            slo.observe("browse", 200, latency=0.001)
        slo.observe("browse", 503)
        section = slo.section()
        assert validate_serving_section(section) == []
        assert section["requests"]["total"] == 11
        assert section["availability"]["observed"] == pytest.approx(10 / 11)
        # The histogram is obs-owned: under REPRO_OBS=0 quantiles vanish
        # but the section stays well-formed.
        assert section["latency"]["p50"] is None


class TestState:
    def test_export_restore_roundtrip(self):
        slo = tracker()
        slo.observe("browse", 200, latency=0.001, hit=True)
        slo.observe("stream", 429)
        exported = slo.export_state()
        replica = tracker()
        replica.restore_state(exported)
        assert replica.export_state() == exported
