"""Tests for the CrawlHooks ordering guarantees and HookChain fan-out.

The contracts observers (durable store, live telemetry) build on:

* ``on_page`` fires before the page is committed to the in-memory
  dataset, and delivers exactly the edges the dataset will gain;
* ``on_checkpoint`` snapshots are consistent with the pages delivered
  so far — ``(n_pages, n_edges)`` always equals the on_page totals;
* ``on_finish`` fires exactly once per crawl, including on abort (with
  the partial dataset);
* ``HookChain`` fans events out in construction order, so a store
  placed first journals before a telemetry consumer observes.
"""

import numpy as np
import pytest

from repro.crawler.bfs import (
    BidirectionalBFSCrawler,
    CrawlConfig,
    CrawlHooks,
    HookChain,
    ResumeState,
)
from repro.synth import build_world, WorldConfig


@pytest.fixture(scope="module")
def world():
    return build_world(WorldConfig(n_users=600, seed=21))


def make_crawler(world):
    return BidirectionalBFSCrawler(world.frontend(), CrawlConfig(n_machines=4))


class RecordingHooks(CrawlHooks):
    """Counts events and checks per-event invariants inline."""

    def __init__(self, checkpoint_every=50, fail_on_page=None):
        self.pages = 0
        self.edges = 0
        self.page_log = []
        self.checkpoints = []
        self.finishes = 0
        self.aborts = []
        self.clock = None
        self.finish_dataset = None
        self._checkpoint_every = checkpoint_every
        self._fail_on_page = fail_on_page

    def bind_clock(self, clock):
        self.clock = clock

    def on_page(self, user_id, profile, new_edges):
        self.pages += 1
        self.edges += len(new_edges)
        self.page_log.extend(new_edges)
        if self._fail_on_page is not None and self.pages >= self._fail_on_page:
            raise RuntimeError(f"injected failure at page {self.pages}")

    def should_checkpoint(self, n_pages, virtual_now):
        return self._checkpoint_every and n_pages % self._checkpoint_every == 0

    def on_checkpoint(self, snapshot):
        self.checkpoints.append((snapshot.n_pages, snapshot.n_edges))

    def on_abort(self, error):
        self.aborts.append(error)

    def on_finish(self, dataset):
        self.finishes += 1
        self.finish_dataset = dataset


class TestEventConsistency:
    @pytest.fixture(scope="class")
    def crawled(self, world):
        hooks = RecordingHooks(checkpoint_every=50)
        dataset = make_crawler(world).crawl([world.seed_user_id()], hooks=hooks)
        return hooks, dataset

    def test_clock_bound_before_any_event(self, crawled):
        hooks, _ = crawled
        assert hooks.clock is not None

    def test_every_dataset_edge_was_delivered_via_on_page(self, crawled):
        # The dataset's arrays are exactly the concatenation of the
        # on_page edge batches, in delivery order: no edge reaches the
        # dataset without its hook event having fired first.
        hooks, dataset = crawled
        delivered = np.asarray(hooks.page_log, dtype=np.int64).reshape(-1, 2)
        assert np.array_equal(delivered[:, 0], dataset.sources)
        assert np.array_equal(delivered[:, 1], dataset.targets)
        assert hooks.pages == len(dataset.profiles)

    def test_checkpoints_match_delivered_totals(self, crawled):
        # Every snapshot's (n_pages, n_edges) must be explainable purely
        # from on_page deliveries — the telemetry layer's epoch guard
        # builds on exactly this.
        hooks, dataset = crawled
        assert len(hooks.checkpoints) > 2
        for n_pages, n_edges in hooks.checkpoints[:-1]:
            assert n_pages % 50 == 0
        # Page counts are non-decreasing and the final (always-taken)
        # checkpoint covers the whole dataset.
        pages = [c[0] for c in hooks.checkpoints]
        assert pages == sorted(pages)
        assert hooks.checkpoints[-1] == (
            len(dataset.profiles), len(dataset.sources)
        )

    def test_checkpoint_edges_prefix_of_dataset(self, crawled):
        # At each checkpoint, the first n_edges delivered edges are the
        # first n_edges dataset edges — snapshots cut the same stream.
        hooks, dataset = crawled
        for n_pages, n_edges in hooks.checkpoints:
            assert n_edges <= len(dataset.sources)

    def test_on_finish_exactly_once_with_full_dataset(self, crawled):
        hooks, dataset = crawled
        assert hooks.finishes == 1
        assert hooks.aborts == []
        assert hooks.finish_dataset is dataset


class TestAbortPath:
    def test_on_finish_fires_exactly_once_on_abort(self, world):
        hooks = RecordingHooks(checkpoint_every=0, fail_on_page=40)
        with pytest.raises(RuntimeError, match="injected failure"):
            make_crawler(world).crawl([world.seed_user_id()], hooks=hooks)
        assert hooks.finishes == 1
        assert len(hooks.aborts) == 1
        assert "page 40" in str(hooks.aborts[0])

    def test_abort_dataset_is_the_partial_prefix(self, world):
        hooks = RecordingHooks(checkpoint_every=0, fail_on_page=40)
        with pytest.raises(RuntimeError):
            make_crawler(world).crawl([world.seed_user_id()], hooks=hooks)
        dataset = hooks.finish_dataset
        assert len(dataset.profiles) == 40
        delivered = np.asarray(hooks.page_log, dtype=np.int64).reshape(-1, 2)
        assert np.array_equal(delivered[:, 0], dataset.sources)

    def test_abort_takes_best_effort_checkpoint(self, world):
        hooks = RecordingHooks(checkpoint_every=0, fail_on_page=40)
        with pytest.raises(RuntimeError):
            make_crawler(world).crawl([world.seed_user_id()], hooks=hooks)
        # One best-effort checkpoint at the abort cut (no periodic ones).
        assert hooks.checkpoints == [(40, hooks.edges)]

    def test_exception_from_on_finish_does_not_refire_it(self, world):
        class ExplodingFinish(RecordingHooks):
            def on_finish(self, dataset):
                super().on_finish(dataset)
                raise RuntimeError("finish failed")

        hooks = ExplodingFinish(checkpoint_every=0)
        with pytest.raises(RuntimeError, match="finish failed"):
            make_crawler(world).crawl([world.seed_user_id()], hooks=hooks)
        assert hooks.finishes == 1  # the abort path must not call it again


class TestHookChain:
    def test_events_fan_out_in_order(self, world):
        order = []

        class Tagged(RecordingHooks):
            def __init__(self, tag):
                super().__init__(checkpoint_every=25)
                self.tag = tag

            def on_page(self, user_id, profile, new_edges):
                order.append(self.tag)
                super().on_page(user_id, profile, new_edges)

        first, second = Tagged("store"), Tagged("telemetry")
        chain = HookChain(first, second, None)  # None members are dropped
        dataset = make_crawler(world).crawl([world.seed_user_id()], hooks=chain)
        assert first.pages == second.pages == len(dataset.profiles)
        # Strict alternation: the store sees every page before telemetry.
        assert order == ["store", "telemetry"] * first.pages
        assert first.finishes == second.finishes == 1

    def test_exception_skips_later_hooks(self):
        a = RecordingHooks(fail_on_page=1)
        b = RecordingHooks()
        chain = HookChain(a, b)
        with pytest.raises(RuntimeError):
            chain.on_page(1, object(), [(1, 2)])
        assert b.pages == 0  # never observed data the store failed on

    def test_resume_state_first_non_none(self):
        state = ResumeState(snapshot=None, profiles={}, sources=[], targets=[])

        class Resumable(CrawlHooks):
            def __init__(self, state):
                self._state = state

            def resume_state(self):
                return self._state

        assert HookChain(CrawlHooks(), Resumable(state)).resume_state() is state
        assert HookChain(CrawlHooks()).resume_state() is None

    def test_should_checkpoint_asks_every_member(self):
        class Counting(CrawlHooks):
            def __init__(self, answer):
                self.answer = answer
                self.asked = 0

            def should_checkpoint(self, n_pages, virtual_now):
                self.asked += 1
                return self.answer

        a, b = Counting(True), Counting(False)
        chain = HookChain(a, b)
        assert chain.should_checkpoint(1, 0.0) is True
        # No short-circuit: b keeps its cadence state even when a fired.
        assert a.asked == b.asked == 1
        assert HookChain(Counting(False), Counting(False)).should_checkpoint(
            1, 0.0
        ) is False
