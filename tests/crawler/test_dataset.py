"""Tests for the crawl dataset container and serialisation."""

import numpy as np
import pytest

from repro.crawler.dataset import (
    CrawlDataset,
    CrawlStats,
    profile_from_json,
    profile_to_json,
)
from repro.crawler.parse import ParsedProfile
from repro.platform.models import (
    ContactInfo,
    Gender,
    LookingFor,
    Place,
    Relationship,
)


@pytest.fixture
def dataset() -> CrawlDataset:
    profiles = {
        1: ParsedProfile(
            user_id=1,
            name="Ada",
            fields={
                "gender": Gender.FEMALE,
                "relationship": Relationship.MARRIED,
                "places_lived": [Place("London", 51.5, -0.1, "GB")],
                "work_contact": ContactInfo(phone="+44", email="a@b.c"),
                "other_profiles": ["https://x"],
            },
            in_list=(2,),
            out_list=(2, 3),
            declared_in=1,
            declared_out=2,
        ),
        2: ParsedProfile(user_id=2, name="Bob"),
    }
    return CrawlDataset(
        profiles=profiles,
        sources=np.array([1, 1, 2], dtype=np.int64),
        targets=np.array([2, 3, 1], dtype=np.int64),
        stats=CrawlStats(pages_fetched=2, n_machines=3),
    )


class TestGraphExport:
    def test_node_ids_include_uncrawled_endpoints(self, dataset):
        assert dataset.node_ids().tolist() == [1, 2, 3]

    def test_to_csr(self, dataset):
        graph = dataset.to_csr()
        assert graph.n == 3
        assert graph.n_edges == 3
        assert graph.has_edge(
            graph.compact_index(1), graph.compact_index(2)
        )

    def test_to_digraph(self, dataset):
        graph = dataset.to_digraph()
        assert graph.n_nodes == 3
        assert graph.has_edge(2, 1)

    def test_counts(self, dataset):
        assert dataset.n_profiles == 2
        assert dataset.n_edges == 3


class TestSerialisation:
    def test_roundtrip(self, dataset, tmp_path):
        dataset.save(tmp_path / "crawl")
        reloaded = CrawlDataset.load(tmp_path / "crawl")
        assert reloaded.n_profiles == dataset.n_profiles
        assert np.array_equal(reloaded.sources, dataset.sources)
        assert np.array_equal(reloaded.targets, dataset.targets)
        assert reloaded.stats.pages_fetched == 2
        assert reloaded.stats.n_machines == 3

    def test_typed_fields_survive(self, dataset, tmp_path):
        dataset.save(tmp_path / "crawl")
        reloaded = CrawlDataset.load(tmp_path / "crawl")
        profile = reloaded.profiles[1]
        assert profile.gender() is Gender.FEMALE
        assert profile.relationship() is Relationship.MARRIED
        place = profile.current_place()
        assert isinstance(place, Place)
        assert place.country == "GB"
        contact = profile.fields["work_contact"]
        assert isinstance(contact, ContactInfo)
        assert contact.phone == "+44"
        assert profile.fields["other_profiles"] == ["https://x"]

    def test_lists_and_counts_survive(self, dataset, tmp_path):
        dataset.save(tmp_path / "crawl")
        profile = CrawlDataset.load(tmp_path / "crawl").profiles[1]
        assert profile.in_list == (2,)
        assert profile.out_list == (2, 3)
        assert profile.declared_out == 2

    def test_hidden_lists_survive_as_none(self, dataset, tmp_path):
        dataset.save(tmp_path / "crawl")
        profile = CrawlDataset.load(tmp_path / "crawl").profiles[2]
        assert profile.in_list is None


class TestEnumRoundTrip:
    """Every enum-typed field value survives the JSON codecs exactly."""

    def roundtrip(self, fields: dict) -> ParsedProfile:
        profile = ParsedProfile(user_id=9, name="Eve", fields=fields)
        return profile_from_json(profile_to_json(profile))

    @pytest.mark.parametrize("gender", list(Gender))
    def test_every_gender(self, gender):
        back = self.roundtrip({"gender": gender})
        assert back.fields["gender"] is gender

    @pytest.mark.parametrize("relationship", list(Relationship))
    def test_every_relationship(self, relationship):
        back = self.roundtrip({"relationship": relationship})
        assert back.fields["relationship"] is relationship

    def test_looking_for_is_a_list_of_enums(self):
        # looking_for is multi-valued on real profiles.
        values = [LookingFor.FRIENDS, LookingFor.NETWORKING]
        back = self.roundtrip({"looking_for": values})
        assert back.fields["looking_for"] == values
        assert all(isinstance(v, LookingFor) for v in back.fields["looking_for"])

    @pytest.mark.parametrize("looking_for", list(LookingFor))
    def test_every_looking_for(self, looking_for):
        back = self.roundtrip({"looking_for": [looking_for]})
        assert back.fields["looking_for"] == [looking_for]

    def test_contact_info_all_fields(self):
        contact = ContactInfo(phone="+1-555", email="e@f.g", address="1 Way")
        back = self.roundtrip({"home_contact": contact})
        assert back.fields["home_contact"] == contact

    def test_full_profile_equality(self, dataset):
        # The codec round-trip is the identity on a fully loaded profile
        # (dataclass equality covers every field at once).
        original = dataset.profiles[1]
        assert profile_from_json(profile_to_json(original)) == original


class TestWriteEdgeList:
    def expected(self, dataset) -> str:
        return "".join(
            f"{u}\t{v}\n" for u, v in zip(dataset.sources, dataset.targets)
        )

    def test_content_matches_rows(self, dataset, tmp_path):
        path = tmp_path / "edges.tsv"
        dataset.write_edge_list(path)
        assert path.read_text() == self.expected(dataset)

    def test_chunked_writes_agree_with_single_chunk(self, tmp_path):
        n = 1000
        dataset = CrawlDataset(
            profiles={},
            sources=np.arange(n, dtype=np.int64),
            targets=np.arange(n, dtype=np.int64) + 7,
        )
        small = tmp_path / "small.tsv"
        big = tmp_path / "big.tsv"
        dataset.write_edge_list(small, chunk_size=3)  # not a divisor of n
        dataset.write_edge_list(big, chunk_size=10 * n)
        assert small.read_text() == big.read_text()
        assert small.read_text().count("\n") == n

    def test_chunk_boundary_exact_divisor(self, dataset, tmp_path):
        path = tmp_path / "edges.tsv"
        dataset.write_edge_list(path, chunk_size=len(dataset.sources))
        assert path.read_text() == self.expected(dataset)

    def test_rows_are_native_ints(self, dataset, tmp_path):
        path = tmp_path / "edges.tsv"
        dataset.write_edge_list(path, chunk_size=2)
        first = path.read_text().splitlines()[0]
        assert first == "1\t2"

    def test_empty_dataset_writes_empty_file(self, tmp_path):
        dataset = CrawlDataset(
            profiles={},
            sources=np.empty(0, dtype=np.int64),
            targets=np.empty(0, dtype=np.int64),
        )
        path = tmp_path / "edges.tsv"
        dataset.write_edge_list(path)
        assert path.read_text() == ""

    def test_rejects_nonpositive_chunk(self, dataset, tmp_path):
        with pytest.raises(ValueError):
            dataset.write_edge_list(tmp_path / "x", chunk_size=0)
