"""Tests for the crawl dataset container and serialisation."""

import numpy as np
import pytest

from repro.crawler.dataset import CrawlDataset, CrawlStats
from repro.crawler.parse import ParsedProfile
from repro.platform.models import ContactInfo, Gender, Place, Relationship


@pytest.fixture
def dataset() -> CrawlDataset:
    profiles = {
        1: ParsedProfile(
            user_id=1,
            name="Ada",
            fields={
                "gender": Gender.FEMALE,
                "relationship": Relationship.MARRIED,
                "places_lived": [Place("London", 51.5, -0.1, "GB")],
                "work_contact": ContactInfo(phone="+44", email="a@b.c"),
                "other_profiles": ["https://x"],
            },
            in_list=(2,),
            out_list=(2, 3),
            declared_in=1,
            declared_out=2,
        ),
        2: ParsedProfile(user_id=2, name="Bob"),
    }
    return CrawlDataset(
        profiles=profiles,
        sources=np.array([1, 1, 2], dtype=np.int64),
        targets=np.array([2, 3, 1], dtype=np.int64),
        stats=CrawlStats(pages_fetched=2, n_machines=3),
    )


class TestGraphExport:
    def test_node_ids_include_uncrawled_endpoints(self, dataset):
        assert dataset.node_ids().tolist() == [1, 2, 3]

    def test_to_csr(self, dataset):
        graph = dataset.to_csr()
        assert graph.n == 3
        assert graph.n_edges == 3
        assert graph.has_edge(
            graph.compact_index(1), graph.compact_index(2)
        )

    def test_to_digraph(self, dataset):
        graph = dataset.to_digraph()
        assert graph.n_nodes == 3
        assert graph.has_edge(2, 1)

    def test_counts(self, dataset):
        assert dataset.n_profiles == 2
        assert dataset.n_edges == 3


class TestSerialisation:
    def test_roundtrip(self, dataset, tmp_path):
        dataset.save(tmp_path / "crawl")
        reloaded = CrawlDataset.load(tmp_path / "crawl")
        assert reloaded.n_profiles == dataset.n_profiles
        assert np.array_equal(reloaded.sources, dataset.sources)
        assert np.array_equal(reloaded.targets, dataset.targets)
        assert reloaded.stats.pages_fetched == 2
        assert reloaded.stats.n_machines == 3

    def test_typed_fields_survive(self, dataset, tmp_path):
        dataset.save(tmp_path / "crawl")
        reloaded = CrawlDataset.load(tmp_path / "crawl")
        profile = reloaded.profiles[1]
        assert profile.gender() is Gender.FEMALE
        assert profile.relationship() is Relationship.MARRIED
        place = profile.current_place()
        assert isinstance(place, Place)
        assert place.country == "GB"
        contact = profile.fields["work_contact"]
        assert isinstance(contact, ContactInfo)
        assert contact.phone == "+44"
        assert profile.fields["other_profiles"] == ["https://x"]

    def test_lists_and_counts_survive(self, dataset, tmp_path):
        dataset.save(tmp_path / "crawl")
        profile = CrawlDataset.load(tmp_path / "crawl").profiles[1]
        assert profile.in_list == (2,)
        assert profile.out_list == (2, 3)
        assert profile.declared_out == 2

    def test_hidden_lists_survive_as_none(self, dataset, tmp_path):
        dataset.save(tmp_path / "crawl")
        profile = CrawlDataset.load(tmp_path / "crawl").profiles[2]
        assert profile.in_list is None
