"""Fault-injection tests: the crawl result must not depend on transport
conditions — throttling, transient 503s, fleet size — only on what the
service exposes."""

import numpy as np
import pytest

from repro.crawler.bfs import BidirectionalBFSCrawler, CrawlConfig
from repro.synth import build_world, WorldConfig


@pytest.fixture(scope="module")
def world():
    return build_world(WorldConfig(n_users=800, seed=71))


def crawl(world, **frontend_kwargs):
    frontend = world.frontend(**frontend_kwargs)
    crawler = BidirectionalBFSCrawler(frontend, CrawlConfig(n_machines=5))
    return crawler.crawl([world.seed_user_id()])


class TestFaultTolerance:
    def test_flaky_server_yields_identical_dataset(self, world):
        clean = crawl(world)
        flaky = crawl(world, error_rate=0.08)
        assert flaky.n_profiles == clean.n_profiles
        assert np.array_equal(flaky.sources, clean.sources)
        assert np.array_equal(flaky.targets, clean.targets)
        assert flaky.stats.server_errors > 0

    def test_tight_rate_limit_yields_identical_dataset(self, world):
        clean = crawl(world)
        throttled = crawl(world, rate_per_ip=5.0, burst=5.0)
        assert throttled.n_profiles == clean.n_profiles
        assert np.array_equal(throttled.sources, clean.sources)
        assert throttled.stats.throttled > 0
        # Throttling costs virtual time.
        assert throttled.stats.virtual_duration > clean.stats.virtual_duration

    def test_fleet_size_does_not_change_coverage(self, world):
        small_fleet = BidirectionalBFSCrawler(
            world.frontend(), CrawlConfig(n_machines=1)
        ).crawl([world.seed_user_id()])
        big_fleet = BidirectionalBFSCrawler(
            world.frontend(), CrawlConfig(n_machines=11)
        ).crawl([world.seed_user_id()])
        assert small_fleet.n_profiles == big_fleet.n_profiles
        assert small_fleet.n_edges == big_fleet.n_edges

    def test_bigger_fleet_is_faster_in_virtual_time(self, world):
        small_fleet = BidirectionalBFSCrawler(
            world.frontend(rate_per_ip=1e9, burst=1e9),
            CrawlConfig(n_machines=1),
        ).crawl([world.seed_user_id()])
        big_fleet = BidirectionalBFSCrawler(
            world.frontend(rate_per_ip=1e9, burst=1e9),
            CrawlConfig(n_machines=11),
        ).crawl([world.seed_user_id()])
        assert (
            big_fleet.stats.virtual_duration
            < small_fleet.stats.virtual_duration
        )

    def test_combined_faults(self, world):
        clean = crawl(world)
        stressed = crawl(world, error_rate=0.05, rate_per_ip=20.0, burst=30.0)
        assert stressed.n_profiles == clean.n_profiles
        assert stressed.n_edges == clean.n_edges
