"""Tests for profile-page parsing."""

from repro.crawler.parse import parse_profile_page, ParsedProfile
from repro.platform.models import ContactInfo, Gender, Place, Relationship
from repro.platform.pages import CircleListView, ProfilePage


def page_with(fields=None, in_list=None, out_list=None) -> ProfilePage:
    return ProfilePage(
        user_id=7,
        name="Ada",
        fields=fields or {},
        in_list=in_list,
        out_list=out_list,
    )


class TestParse:
    def test_basic_extraction(self):
        page = page_with(
            fields={"occupation": "Engineer"},
            in_list=CircleListView((1, 2), 2),
            out_list=CircleListView((3,), 5),
        )
        profile = parse_profile_page(page)
        assert profile.user_id == 7
        assert profile.fields["occupation"] == "Engineer"
        assert profile.in_list == (1, 2)
        assert profile.declared_in == 2
        assert profile.declared_out == 5

    def test_hidden_lists(self):
        profile = parse_profile_page(page_with())
        assert profile.in_list is None
        assert profile.out_list is None
        assert profile.declared_in == 0


class TestParsedProfileAccessors:
    def test_count_fields_excludes_contacts_by_default(self):
        profile = ParsedProfile(
            user_id=1,
            name="x",
            fields={
                "occupation": "E",
                "work_contact": ContactInfo(phone="+1"),
            },
        )
        assert profile.count_fields() == 2  # name + occupation
        assert profile.count_fields(include_contacts=True) == 3

    def test_shares_phone(self):
        with_phone = ParsedProfile(
            user_id=1, name="x", fields={"home_contact": ContactInfo(phone="+1")}
        )
        without = ParsedProfile(
            user_id=1, name="x", fields={"home_contact": ContactInfo(email="e")}
        )
        assert with_phone.shares_phone()
        assert not without.shares_phone()

    def test_typed_accessors(self):
        profile = ParsedProfile(
            user_id=1,
            name="x",
            fields={
                "gender": Gender.FEMALE,
                "relationship": Relationship.SINGLE,
                "places_lived": [Place("A", 1.0, 2.0, "US")],
            },
        )
        assert profile.gender() is Gender.FEMALE
        assert profile.relationship() is Relationship.SINGLE
        assert profile.current_place().name == "A"
        assert profile.country() == "US"

    def test_accessors_none_when_absent(self):
        profile = ParsedProfile(user_id=1, name="x")
        assert profile.gender() is None
        assert profile.relationship() is None
        assert profile.current_place() is None
        assert profile.country() is None

    def test_has_field(self):
        profile = ParsedProfile(user_id=1, name="x", fields={"phrase": "hi"})
        assert profile.has_field("name")
        assert profile.has_field("phrase")
        assert not profile.has_field("education")
