"""Tests for profile-page parsing."""

from types import SimpleNamespace

import pytest

from repro.crawler.parse import PageParseError, parse_profile_page, ParsedProfile
from repro.faults import CORRUPTION_MODES, corrupt_payload
from repro.platform.models import ContactInfo, Gender, Place, Relationship
from repro.platform.pages import CircleListView, ProfilePage


def page_with(fields=None, in_list=None, out_list=None) -> ProfilePage:
    return ProfilePage(
        user_id=7,
        name="Ada",
        fields=fields or {},
        in_list=in_list,
        out_list=out_list,
    )


class TestParse:
    def test_basic_extraction(self):
        page = page_with(
            fields={"occupation": "Engineer"},
            in_list=CircleListView((1, 2), 2),
            out_list=CircleListView((3,), 5),
        )
        profile = parse_profile_page(page)
        assert profile.user_id == 7
        assert profile.fields["occupation"] == "Engineer"
        assert profile.in_list == (1, 2)
        assert profile.declared_in == 2
        assert profile.declared_out == 5

    def test_hidden_lists(self):
        profile = parse_profile_page(page_with())
        assert profile.in_list is None
        assert profile.out_list is None
        assert profile.declared_in == 0


class TestParsedProfileAccessors:
    def test_count_fields_excludes_contacts_by_default(self):
        profile = ParsedProfile(
            user_id=1,
            name="x",
            fields={
                "occupation": "E",
                "work_contact": ContactInfo(phone="+1"),
            },
        )
        assert profile.count_fields() == 2  # name + occupation
        assert profile.count_fields(include_contacts=True) == 3

    def test_shares_phone(self):
        with_phone = ParsedProfile(
            user_id=1, name="x", fields={"home_contact": ContactInfo(phone="+1")}
        )
        without = ParsedProfile(
            user_id=1, name="x", fields={"home_contact": ContactInfo(email="e")}
        )
        assert with_phone.shares_phone()
        assert not without.shares_phone()

    def test_typed_accessors(self):
        profile = ParsedProfile(
            user_id=1,
            name="x",
            fields={
                "gender": Gender.FEMALE,
                "relationship": Relationship.SINGLE,
                "places_lived": [Place("A", 1.0, 2.0, "US")],
            },
        )
        assert profile.gender() is Gender.FEMALE
        assert profile.relationship() is Relationship.SINGLE
        assert profile.current_place().name == "A"
        assert profile.country() == "US"

    def test_accessors_none_when_absent(self):
        profile = ParsedProfile(user_id=1, name="x")
        assert profile.gender() is None
        assert profile.relationship() is None
        assert profile.current_place() is None
        assert profile.country() is None

    def test_has_field(self):
        profile = ParsedProfile(user_id=1, name="x", fields={"phrase": "hi"})
        assert profile.has_field("name")
        assert profile.has_field("phrase")
        assert not profile.has_field("education")


class TestCorruptPageHardening:
    """Every shape the fault layer can inject raises PageParseError."""

    def full_page(self) -> ProfilePage:
        return page_with(
            fields={"occupation": "Engineer"},
            in_list=CircleListView((1, 2), 2),
            out_list=CircleListView((3,), 5),
        )

    @pytest.mark.parametrize("mode", CORRUPTION_MODES)
    def test_injected_corruption_raises_typed_error(self, mode):
        mangled = corrupt_payload(self.full_page(), mode)
        with pytest.raises(PageParseError):
            parse_profile_page(mangled)

    def test_blank_page(self):
        with pytest.raises(PageParseError, match="empty page"):
            parse_profile_page(None)

    def test_truncated_document(self):
        with pytest.raises(PageParseError, match="name"):
            parse_profile_page(SimpleNamespace(user_id=7))

    def test_unusable_user_id(self):
        for bad in (None, "7", -1, True):
            with pytest.raises(PageParseError, match="user id"):
                parse_profile_page(SimpleNamespace(user_id=bad, name="Ada"))

    def test_missing_name(self):
        with pytest.raises(PageParseError, match="name"):
            parse_profile_page(SimpleNamespace(user_id=7, name=None, fields={}))

    def test_malformed_field_block(self):
        with pytest.raises(PageParseError, match="field block"):
            parse_profile_page(
                SimpleNamespace(user_id=7, name="Ada", fields="occupation")
            )

    def test_circle_list_without_ids(self):
        page = SimpleNamespace(
            user_id=7,
            name="Ada",
            fields={},
            in_list=SimpleNamespace(declared_count=3),
            out_list=None,
        )
        with pytest.raises(PageParseError, match="no id sequence"):
            parse_profile_page(page)

    def test_circle_list_with_garbage_ids(self):
        for garbage in ("<a href>", None, -1.5, -2, True):
            page = SimpleNamespace(
                user_id=7,
                name="Ada",
                fields={},
                in_list=None,
                out_list=SimpleNamespace(user_ids=(1, garbage), declared_count=5),
            )
            with pytest.raises(PageParseError, match="non-id"):
                parse_profile_page(page)

    def test_circle_list_with_invalid_declared_count(self):
        for declared in (None, 1, True, "5"):
            page = SimpleNamespace(
                user_id=7,
                name="Ada",
                fields={},
                in_list=SimpleNamespace(user_ids=(1, 2, 3), declared_count=declared),
                out_list=None,
            )
            with pytest.raises(PageParseError, match="invalid"):
                parse_profile_page(page)

    def test_intact_page_still_parses(self):
        profile = parse_profile_page(self.full_page())
        assert profile.user_id == 7
        assert profile.in_list == (1, 2)
