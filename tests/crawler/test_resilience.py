"""Unit tests for the fleet's resilience primitives."""

import pytest

from repro.crawler.fetch import Fetcher
from repro.crawler.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    ResiliencePolicy,
    RetryBudget,
)
from repro.crawler.workers import MachinePool
from repro.platform.http import HttpFrontend, Response


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=1.0)
        for _ in range(2):
            breaker.record_failure(0.0)
        assert breaker.state(0.0) == BREAKER_CLOSED
        breaker.record_failure(0.0)
        assert breaker.state(0.0) == BREAKER_OPEN
        assert not breaker.allow(0.5)
        assert breaker.opens == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        breaker.record_success(0.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.state(0.0) == BREAKER_CLOSED

    def test_half_opens_after_cooldown_then_closes_on_probes(self):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown=1.0, probe_successes=2
        )
        breaker.record_failure(0.0)
        assert breaker.state(0.9) == BREAKER_OPEN
        assert breaker.state(1.0) == BREAKER_HALF_OPEN
        assert breaker.allow(1.0)
        breaker.record_success(1.1)
        assert breaker.state(1.1) == BREAKER_HALF_OPEN
        breaker.record_success(1.2)
        assert breaker.state(1.2) == BREAKER_CLOSED

    def test_probe_failure_reopens_for_a_fresh_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1.0)
        breaker.record_failure(0.0)
        assert breaker.state(1.0) == BREAKER_HALF_OPEN
        breaker.record_failure(1.5)
        assert breaker.state(1.5) == BREAKER_OPEN
        assert breaker.cooldown_remaining(1.5) == pytest.approx(1.0)
        assert breaker.opens == 2

    def test_export_restore_round_trip(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=3.0)
        breaker.record_failure(0.5)
        breaker.record_failure(0.6)
        clone = CircuitBreaker(failure_threshold=2, cooldown=3.0)
        clone.restore_state(breaker.export_state())
        assert clone.state(1.0) == BREAKER_OPEN
        assert clone.cooldown_remaining(1.0) == pytest.approx(2.6)
        assert clone.opens == 1

    def test_restore_rejects_unknown_state(self):
        breaker = CircuitBreaker()
        state = breaker.export_state()
        state["state"] = "ajar"
        with pytest.raises(ValueError, match="unknown breaker state"):
            breaker.restore_state(state)

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(probe_successes=0)


class TestRetryBudget:
    def test_unlimited_by_default(self):
        budget = RetryBudget()
        assert budget.remaining is None
        assert not budget.exhausted
        assert all(budget.spend() for _ in range(10_000))

    def test_spend_down_to_zero_then_refuse(self):
        budget = RetryBudget(3)
        assert budget.spend(2)
        assert budget.remaining == 1
        assert not budget.spend(2)  # refused whole, nothing partial
        assert budget.remaining == 1
        assert budget.spend()
        assert budget.exhausted

    def test_export_restore(self):
        budget = RetryBudget(10)
        budget.spend(4)
        clone = RetryBudget()
        clone.restore_state(budget.export_state())
        assert clone.budget == 10
        assert clone.remaining == 6

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            RetryBudget(-1)


class TestResiliencePolicy:
    def test_factories_apply_the_knobs(self):
        policy = ResiliencePolicy(
            breaker_failure_threshold=2,
            breaker_cooldown=0.5,
            breaker_probe_successes=3,
            retry_budget=7,
        )
        breaker = policy.make_breaker()
        assert breaker.failure_threshold == 2
        assert breaker.cooldown == 0.5
        assert breaker.probe_successes == 3
        assert policy.make_budget().budget == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(initial_backoff=0.0)
        with pytest.raises(ValueError):
            ResiliencePolicy(initial_backoff=2.0, max_backoff=1.0)


def stub_frontend() -> HttpFrontend:
    return HttpFrontend(lambda path: Response(200, payload=None))


def make_fetcher(**kwargs) -> Fetcher:
    return Fetcher(
        frontend=stub_frontend(), ip=kwargs.pop("ip", "10.0.0.1"), **kwargs
    )


class TestJitterBackoff:
    def test_backoff_between_initial_and_cap(self):
        fetcher = make_fetcher(initial_backoff=0.1, max_backoff=2.0)
        backoff = 0.0
        for _ in range(50):
            backoff = fetcher._next_backoff(backoff)
            assert 0.1 <= backoff <= 2.0

    def test_backoff_is_capped(self):
        fetcher = make_fetcher(initial_backoff=1.0, max_backoff=1.5)
        backoff = 0.0
        for _ in range(20):
            backoff = fetcher._next_backoff(backoff)
        assert backoff <= 1.5

    def test_same_seed_same_waits(self):
        a = make_fetcher(backoff_seed=5)
        b = make_fetcher(backoff_seed=5)
        assert [a._next_backoff(0.0) for _ in range(10)] == [
            b._next_backoff(0.0) for _ in range(10)
        ]

    def test_machines_have_distinct_jitter_streams(self):
        a = make_fetcher(ip="10.0.0.1", backoff_seed=5)
        b = make_fetcher(ip="10.0.0.2", backoff_seed=5)
        assert [a._next_backoff(0.0) for _ in range(10)] != [
            b._next_backoff(0.0) for _ in range(10)
        ]


class TestPoolHealthRouting:
    def test_all_closed_is_plain_round_robin(self):
        pool = MachinePool(stub_frontend(), n_machines=3)
        ips = [pool._select().ip for _ in range(6)]
        assert ips == ["10.0.0.1", "10.0.0.2", "10.0.0.3"] * 2

    def test_open_breaker_is_skipped(self):
        pool = MachinePool(stub_frontend(), n_machines=3)
        now = pool.frontend.clock.now()
        banned = pool.fetchers[1]
        for _ in range(banned.breaker.failure_threshold):
            banned.breaker.record_failure(now)
        ips = [pool._select().ip for _ in range(4)]
        assert "10.0.0.2" not in ips

    def test_whole_fleet_quarantine_waits_out_the_soonest_cooldown(self):
        pool = MachinePool(
            stub_frontend(),
            n_machines=2,
            policy=ResiliencePolicy(breaker_cooldown=1.0),
        )
        clock = pool.frontend.clock
        pool.fetchers[0].breaker.record_failure(0.0)
        for _ in range(5):
            pool.fetchers[0].breaker.record_failure(0.0)
            pool.fetchers[1].breaker.record_failure(0.2)
        assert not any(f.breaker.allow(clock.now()) for f in pool.fetchers)
        fetcher = pool._select()
        # Machine 1 opened first, so its cooldown lapses first.
        assert fetcher.ip == "10.0.0.1"
        assert clock.now() == pytest.approx(1.0)
        assert pool.quarantine_waits == 1
        assert pool.time_quarantined == pytest.approx(1.0)

    def test_resilience_state_round_trips_through_pool_snapshot(self):
        pool = MachinePool(
            stub_frontend(), n_machines=2, policy=ResiliencePolicy(retry_budget=20)
        )
        pool.fetchers[0].breaker.record_failure(0.3)
        pool.budget.spend(5)
        pool.quarantine_waits = 2
        pool.time_quarantined = 0.7
        state = pool.export_state()

        clone = MachinePool(
            stub_frontend(), n_machines=2, policy=ResiliencePolicy(retry_budget=20)
        )
        clone.restore_state(state)
        assert clone.budget.remaining == 15
        assert clone.fetchers[0].breaker.export_state() == (
            pool.fetchers[0].breaker.export_state()
        )
        assert clone.quarantine_waits == 2
        assert clone.time_quarantined == pytest.approx(0.7)
