"""Tests for the bidirectional BFS crawler against the simulated service."""

import numpy as np
import pytest

from repro.crawler.bfs import BidirectionalBFSCrawler, CrawlConfig
from repro.synth import build_world, WorldConfig


class TestFullCrawl:
    def test_recovers_nearly_all_edges(self, small_world, small_crawl):
        # A full bidirectional crawl misses only edges adjacent to users
        # who hide both their lists and whose partners hide theirs too.
        recall = small_crawl.n_edges / small_world.graph.n_edges
        assert recall > 0.97

    def test_all_edges_are_true_edges(self, small_world, small_crawl):
        truth = set(
            zip(
                small_world.graph.sources.tolist(),
                small_world.graph.targets.tolist(),
            )
        )
        crawled = set(
            zip(small_crawl.sources.tolist(), small_crawl.targets.tolist())
        )
        assert crawled <= truth

    def test_reaches_every_user(self, small_world, small_crawl):
        assert small_crawl.n_profiles == small_world.n_users

    def test_stats_populated(self, small_crawl):
        assert small_crawl.stats.pages_fetched == small_crawl.n_profiles
        assert small_crawl.stats.virtual_duration > 0
        assert small_crawl.stats.n_machines == 4

    def test_deterministic(self, small_world):
        def crawl():
            crawler = BidirectionalBFSCrawler(
                small_world.frontend(), CrawlConfig(n_machines=4)
            )
            return crawler.crawl([small_world.seed_user_id()])

        a, b = crawl(), crawl()
        assert np.array_equal(a.sources, b.sources)
        assert list(a.profiles) == list(b.profiles)


class TestPartialCrawl:
    def test_max_pages_stops_crawl(self, small_world):
        crawler = BidirectionalBFSCrawler(
            small_world.frontend(), CrawlConfig(n_machines=2, max_pages=200)
        )
        dataset = crawler.crawl([small_world.seed_user_id()])
        assert dataset.n_profiles == 200
        # The graph still contains uncrawled endpoints seen in lists.
        assert len(dataset.node_ids()) > 200

    def test_bfs_order_prefers_seed_neighborhood(self, small_world):
        crawler = BidirectionalBFSCrawler(
            small_world.frontend(), CrawlConfig(n_machines=2, max_pages=50)
        )
        seed = small_world.seed_user_id()
        dataset = crawler.crawl([seed])
        assert seed in dataset.profiles


class TestListDirections:
    @pytest.fixture(scope="class")
    def world(self):
        return build_world(WorldConfig(n_users=600, seed=41))

    def test_out_only_misses_edges(self, world):
        both = BidirectionalBFSCrawler(
            world.frontend(), CrawlConfig(n_machines=2)
        ).crawl([world.seed_user_id()])
        out_only = BidirectionalBFSCrawler(
            world.frontend(), CrawlConfig(n_machines=2, follow_in_lists=False)
        ).crawl([world.seed_user_id()])
        assert out_only.n_edges <= both.n_edges

    def test_at_least_one_direction_required(self):
        with pytest.raises(ValueError):
            CrawlConfig(follow_in_lists=False, follow_out_lists=False)

    def test_display_cap_recovery(self):
        """With a tiny display cap, bidirectional crawling still recovers
        most truncated in-edges from the other side's out-lists."""
        world = build_world(
            WorldConfig(n_users=800, seed=19, circle_display_limit=50)
        )
        dataset = BidirectionalBFSCrawler(
            world.frontend(), CrawlConfig(n_machines=2)
        ).crawl([world.seed_user_id()])
        recall = dataset.n_edges / world.graph.n_edges
        assert recall > 0.95
