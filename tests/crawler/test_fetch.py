"""Tests for the retrying fetcher."""

import dataclasses

import pytest

from repro.crawler.fetch import Fetcher, FetchError, FetchStats
from repro.crawler.resilience import RetryBudget
from repro.faults import FaultSchedule, Outage
from repro.obs.metrics import Registry
from repro.platform.http import HttpFrontend
from repro.platform.models import UserProfile
from repro.platform.service import GooglePlusService


@pytest.fixture
def service() -> GooglePlusService:
    svc = GooglePlusService(open_signup=True)
    svc.register(UserProfile(user_id=1, name="One"))
    return svc


def make_fetcher(service, **frontend_kwargs) -> Fetcher:
    frontend = HttpFrontend(service.handle_path, **frontend_kwargs)
    return Fetcher(frontend=frontend, ip="10.0.0.1")


class TestFetcher:
    def test_fetch_ok(self, service):
        fetcher = make_fetcher(service)
        page = fetcher.fetch_profile(1)
        assert page.user_id == 1
        assert fetcher.stats.pages_fetched == 1

    def test_fetch_missing_returns_none(self, service):
        fetcher = make_fetcher(service)
        assert fetcher.fetch_profile(999) is None
        assert fetcher.stats.not_found == 1

    def test_throttled_then_retried(self, service):
        fetcher = make_fetcher(service, rate_per_ip=5.0, burst=1.0)
        for user in (1, 1, 1):
            assert fetcher.fetch_profile(user) is not None
        assert fetcher.stats.throttled > 0
        assert fetcher.stats.time_waiting > 0

    def test_transient_errors_retried(self, service):
        fetcher = make_fetcher(service, error_rate=0.4, seed=1)
        pages = [fetcher.fetch_profile(1) for _ in range(20)]
        assert all(p is not None for p in pages)
        assert fetcher.stats.server_errors > 0

    def test_retries_exhausted(self, service):
        fetcher = make_fetcher(service, error_rate=0.97, seed=2)
        fetcher.max_retries = 2
        with pytest.raises(FetchError):
            for _ in range(50):
                fetcher.fetch_profile(1)

    def test_clock_advances_per_request(self, service):
        fetcher = make_fetcher(service)
        before = fetcher.frontend.clock.now()
        fetcher.fetch_profile(1)
        assert fetcher.frontend.clock.now() > before

    def test_throttle_and_flake_counted_separately(self, service):
        fetcher = make_fetcher(
            service, rate_per_ip=5.0, burst=1.0, error_rate=0.3, seed=5
        )
        for _ in range(10):
            assert fetcher.fetch_profile(1) is not None
        assert fetcher.stats.throttled > 0
        assert fetcher.stats.server_errors > 0

    def test_terminal_failure_pays_no_final_backoff(self, service):
        """Regression: the exhausted-retries path used to spend a backoff
        (clock advance, time_waiting, budget unit, jitter draw) after the
        last attempt, though no further attempt ever followed.

        A permanent outage makes every attempt 503; pinning
        ``initial_backoff == max_backoff`` collapses the decorrelated
        jitter to exactly ``min(cap, U(cap, 3*prev)) == cap``, so every
        paid wait is exactly 8.0 virtual seconds and the accounting is
        exact.
        """
        faults = FaultSchedule([Outage(start=0.0, end=1e9, retry_after=2.0)])
        frontend = HttpFrontend(service.handle_path, faults=faults)
        budget = RetryBudget(100)
        registry = Registry()
        fetcher = Fetcher(
            frontend=frontend,
            ip="10.0.0.1",
            max_retries=3,
            initial_backoff=8.0,
            max_backoff=8.0,
            budget=budget,
            registry=registry,
        )
        with pytest.raises(FetchError, match="retries exhausted"):
            fetcher.fetch_profile(1)
        # 4 attempts happened and all were observed as server errors...
        assert fetcher.stats.server_errors == fetcher.max_retries + 1
        # ...but only the 3 retries that actually ran were paid for.
        assert budget.spent == fetcher.max_retries
        assert fetcher.stats.time_waiting == pytest.approx(3 * 8.0)
        retries = registry.counter(
            "crawler.fetch_retries", labels=("machine", "reason")
        )
        assert retries.value(machine="10.0.0.1", reason="server_error") == 3
        expected = 4 * fetcher.request_latency + 3 * 8.0
        assert frontend.clock.now() == pytest.approx(expected)

    def test_terminal_failure_still_trips_breaker(self, service):
        """The terminal failure skips the backoff but not the breaker."""
        faults = FaultSchedule([Outage(start=0.0, end=1e9)])
        frontend = HttpFrontend(service.handle_path, faults=faults)
        fetcher = Fetcher(frontend=frontend, ip="10.0.0.1", max_retries=4)
        with pytest.raises(FetchError):
            fetcher.fetch_profile(1)
        # failure_threshold=5 == attempts, so the fifth (terminal)
        # failure must have been recorded for the breaker to open.
        assert not fetcher.breaker.allow(frontend.clock.now())

    def test_parallelism_scales_time(self, service):
        solo = make_fetcher(service)
        solo.fetch_profile(1)
        fleet_frontend = HttpFrontend(service.handle_path)
        fleet = Fetcher(
            frontend=fleet_frontend, ip="10.0.0.2", parallelism=10
        )
        fleet.fetch_profile(1)
        assert fleet_frontend.clock.now() < solo.frontend.clock.now()


class TestFetchStats:
    def test_merge_adds_every_field(self):
        a = FetchStats(pages_fetched=2, not_found=1, time_waiting=0.5)
        b = FetchStats(pages_fetched=3, server_errors=4, time_waiting=1.5)
        assert a.merge(b) is a
        assert a == FetchStats(
            pages_fetched=5, not_found=1, server_errors=4, time_waiting=2.0
        )

    def test_add_is_non_destructive(self):
        a = FetchStats(pages_fetched=2)
        b = FetchStats(pages_fetched=3, throttled=1)
        total = a + b
        assert total == FetchStats(pages_fetched=5, throttled=1)
        assert a == FetchStats(pages_fetched=2)

    def test_sum_builtin(self):
        stats = [FetchStats(pages_fetched=i) for i in range(4)]
        assert sum(stats, FetchStats()).pages_fetched == 6

    def test_merge_covers_fields_added_later(self):
        """merge iterates dataclasses.fields, so every field aggregates."""
        a, b = FetchStats(), FetchStats()
        for f in dataclasses.fields(FetchStats):
            setattr(b, f.name, 1)
        a.merge(b)
        for f in dataclasses.fields(FetchStats):
            assert getattr(a, f.name) == 1, f.name
