"""Tests for the crawl machine pool."""

import pytest

from repro.crawler.resilience import BREAKER_HALF_OPEN
from repro.crawler.workers import MachinePool, publish_pool_health
from repro.obs.metrics import Registry
from repro.platform.http import HttpFrontend
from repro.platform.models import UserProfile
from repro.platform.service import GooglePlusService


@pytest.fixture
def frontend() -> HttpFrontend:
    service = GooglePlusService(open_signup=True)
    for uid in range(10):
        service.register(UserProfile(user_id=uid, name=f"U{uid}"))
    return HttpFrontend(service.handle_path)


class TestMachinePool:
    def test_eleven_machines_default(self, frontend):
        assert MachinePool(frontend).n_machines == 11

    def test_distinct_ips(self, frontend):
        pool = MachinePool(frontend, n_machines=5)
        ips = {fetcher.ip for fetcher in pool.fetchers}
        assert len(ips) == 5

    def test_round_robin(self, frontend):
        pool = MachinePool(frontend, n_machines=3)
        for uid in range(6):
            pool.fetch_profile(uid)
        assert [f.stats.pages_fetched for f in pool.fetchers] == [2, 2, 2]

    def test_combined_stats(self, frontend):
        pool = MachinePool(frontend, n_machines=2)
        pool.fetch_profile(0)
        pool.fetch_profile(999)  # 404
        stats = pool.combined_stats()
        assert stats.pages_fetched == 1
        assert stats.not_found == 1

    def test_zero_machines_rejected(self, frontend):
        with pytest.raises(ValueError):
            MachinePool(frontend, n_machines=0)


class TestRestoreState:
    def test_roundtrip(self, frontend):
        pool = MachinePool(frontend, n_machines=3)
        for uid in range(4):
            pool.fetch_profile(uid)
        clone = MachinePool(frontend, n_machines=3)
        clone.restore_state(pool.export_state())
        assert clone.combined_stats() == pool.combined_stats()
        assert clone._next == pool._next

    def test_truncated_resilience_block_rejected(self, frontend):
        """Regression: a short resilience block used to zip-truncate,
        silently leaving part of the fleet on fresh breakers/RNGs."""
        pool = MachinePool(frontend, n_machines=3)
        state = pool.export_state()
        state["resilience"]["fetchers"] = state["resilience"]["fetchers"][:2]
        with pytest.raises(ValueError, match="resilience block covers 2"):
            MachinePool(frontend, n_machines=3).restore_state(state)

    def test_oversized_resilience_block_rejected(self, frontend):
        pool = MachinePool(frontend, n_machines=3)
        state = pool.export_state()
        extra = state["resilience"]["fetchers"][0]
        state["resilience"]["fetchers"] = state["resilience"]["fetchers"] + [extra]
        with pytest.raises(ValueError, match="resilience block covers 4"):
            MachinePool(frontend, n_machines=3).restore_state(state)

    def test_machine_count_mismatch_rejected(self, frontend):
        state = MachinePool(frontend, n_machines=3).export_state()
        with pytest.raises(ValueError, match="checkpoint covers 3"):
            MachinePool(frontend, n_machines=4).restore_state(state)


class TestPublishPoolHealth:
    def test_half_open_encoded_as_one(self, frontend):
        """Regression: half-open used to be the silent fallback encoding
        rather than an explicitly mapped state."""
        pool = MachinePool(frontend, n_machines=2)
        breaker = pool.fetchers[0].breaker
        now = frontend.clock.now()
        for _ in range(breaker.failure_threshold):
            breaker.record_failure(now)
        frontend.clock.advance(breaker.cooldown)
        assert breaker.state(frontend.clock.now()) == BREAKER_HALF_OPEN
        registry = Registry()
        publish_pool_health(pool, registry)
        g_state = registry.gauge("crawler.breaker_state", labels=("machine",))
        assert g_state.value(machine=pool.fetchers[0].ip) == 1.0
        assert g_state.value(machine=pool.fetchers[1].ip) == 0.0

    def test_unrecognised_state_raises(self, frontend):
        pool = MachinePool(frontend, n_machines=1)
        pool.fetchers[0].breaker._state = "melted"
        with pytest.raises(ValueError, match="unrecognised breaker state"):
            publish_pool_health(pool, Registry())
