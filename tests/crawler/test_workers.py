"""Tests for the crawl machine pool."""

import pytest

from repro.crawler.workers import MachinePool
from repro.platform.http import HttpFrontend
from repro.platform.models import UserProfile
from repro.platform.service import GooglePlusService


@pytest.fixture
def frontend() -> HttpFrontend:
    service = GooglePlusService(open_signup=True)
    for uid in range(10):
        service.register(UserProfile(user_id=uid, name=f"U{uid}"))
    return HttpFrontend(service.handle_path)


class TestMachinePool:
    def test_eleven_machines_default(self, frontend):
        assert MachinePool(frontend).n_machines == 11

    def test_distinct_ips(self, frontend):
        pool = MachinePool(frontend, n_machines=5)
        ips = {fetcher.ip for fetcher in pool.fetchers}
        assert len(ips) == 5

    def test_round_robin(self, frontend):
        pool = MachinePool(frontend, n_machines=3)
        for uid in range(6):
            pool.fetch_profile(uid)
        assert [f.stats.pages_fetched for f in pool.fetchers] == [2, 2, 2]

    def test_combined_stats(self, frontend):
        pool = MachinePool(frontend, n_machines=2)
        pool.fetch_profile(0)
        pool.fetch_profile(999)  # 404
        stats = pool.combined_stats()
        assert stats.pages_fetched == 1
        assert stats.not_found == 1

    def test_zero_machines_rejected(self, frontend):
        with pytest.raises(ValueError):
            MachinePool(frontend, n_machines=0)
