"""Tests for Section 2.2 lost-edge estimation."""

import numpy as np
import pytest

from repro.crawler.bfs import BidirectionalBFSCrawler, CrawlConfig
from repro.crawler.dataset import CrawlDataset
from repro.crawler.lost_edges import (
    estimate_lost_edges,
    LostEdgeEstimate,
    naive_truncation_loss,
)
from repro.crawler.parse import ParsedProfile
from repro.synth import build_world, WorldConfig


def synthetic_dataset() -> CrawlDataset:
    """One capped hub (declares 100 in-edges, shows 10) + recovery of 60."""
    hub = ParsedProfile(
        user_id=0,
        name="hub",
        in_list=tuple(range(1, 11)),
        out_list=(),
        declared_in=100,
        declared_out=0,
    )
    sources = np.arange(1, 61, dtype=np.int64)  # 60 recovered edges
    targets = np.zeros(60, dtype=np.int64)
    return CrawlDataset(profiles={0: hub}, sources=sources, targets=targets)


class TestEstimate:
    def test_recovered_accounting(self):
        estimate = estimate_lost_edges(synthetic_dataset(), display_limit=10)
        assert estimate.capped_users == 1
        assert estimate.declared_edges == 100
        assert estimate.collected_edges == 60
        assert estimate.missing_edges == 40
        assert estimate.lost_fraction == pytest.approx(40 / 60)

    def test_naive_accounting(self):
        estimate = naive_truncation_loss(synthetic_dataset(), display_limit=10)
        assert estimate.collected_edges == 10
        assert estimate.missing_edges == 90

    def test_no_capped_users(self):
        dataset = synthetic_dataset()
        estimate = estimate_lost_edges(dataset, display_limit=1000)
        assert estimate.capped_users == 0
        assert estimate.lost_fraction == 0.0

    def test_negative_missing_clamped(self):
        estimate = LostEdgeEstimate(
            capped_users=1,
            declared_edges=5,
            collected_edges=9,
            total_edges=10,
            display_limit=3,
        )
        assert estimate.missing_edges == 0

    def test_empty_dataset(self):
        dataset = CrawlDataset(
            profiles={},
            sources=np.empty(0, dtype=np.int64),
            targets=np.empty(0, dtype=np.int64),
        )
        assert estimate_lost_edges(dataset).lost_fraction == 0.0


class TestEndToEnd:
    def test_bidirectional_recovery_beats_naive(self):
        """On a world with an aggressive display cap, the paper's
        bidirectional methodology loses far fewer edges than naive
        in-list scraping."""
        world = build_world(
            WorldConfig(n_users=800, seed=3, circle_display_limit=40)
        )
        dataset = BidirectionalBFSCrawler(
            world.frontend(), CrawlConfig(n_machines=2)
        ).crawl([world.seed_user_id()])
        naive = naive_truncation_loss(dataset, display_limit=40)
        recovered = estimate_lost_edges(dataset, display_limit=40)
        assert naive.capped_users > 0
        assert recovered.lost_fraction < naive.lost_fraction
        assert recovered.lost_fraction < 0.05  # paper: 1.6%
