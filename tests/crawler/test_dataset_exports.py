"""Tests for dataset export conveniences (networkx, edge list)."""

import numpy as np
import pytest

from repro.crawler.dataset import CrawlDataset
from repro.crawler.parse import ParsedProfile
from repro.platform.models import Place


@pytest.fixture
def dataset() -> CrawlDataset:
    profiles = {
        1: ParsedProfile(
            user_id=1,
            name="Ada",
            fields={"places_lived": [Place("London", 51.51, -0.13, "GB")]},
        ),
        2: ParsedProfile(user_id=2, name="Bob"),
    }
    return CrawlDataset(
        profiles=profiles,
        sources=np.array([1, 2], dtype=np.int64),
        targets=np.array([2, 3], dtype=np.int64),
    )


class TestNetworkxExport:
    def test_structure(self, dataset):
        graph = dataset.to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 2
        assert graph.has_edge(1, 2)
        assert graph.has_edge(2, 3)

    def test_node_attributes(self, dataset):
        graph = dataset.to_networkx()
        assert graph.nodes[1]["name"] == "Ada"
        assert graph.nodes[1]["country"] == "GB"
        assert graph.nodes[1]["crawled"]
        assert "country" not in graph.nodes[2]
        assert "crawled" not in graph.nodes[3]  # uncrawled endpoint


class TestEdgeList:
    def test_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "edges.tsv"
        dataset.write_edge_list(path)
        lines = path.read_text().splitlines()
        assert lines == ["1\t2", "2\t3"]


class TestOnRealCrawl:
    def test_networkx_agrees_with_csr(self, small_crawl):
        nx_graph = small_crawl.to_networkx()
        csr = small_crawl.to_csr()
        assert nx_graph.number_of_nodes() == csr.n
        assert nx_graph.number_of_edges() == csr.n_edges
