"""Tests for random-walk and MHRW sampling over profile pages."""

import numpy as np
import pytest

from repro.crawler.fetch import Fetcher
from repro.crawler.graph_sampling import (
    MHRWSampler,
    RandomWalkSampler,
    reweighted_mean_degree,
    SamplingBiasReport,
    WalkSample,
)


@pytest.fixture(scope="module")
def fetcher(small_world) -> Fetcher:
    return Fetcher(frontend=small_world.frontend(), ip="10.9.9.9")


class TestWalkSample:
    def test_mean_degree(self):
        sample = WalkSample(user_ids=[1, 2], degrees=[10, 20])
        assert sample.mean_degree() == 15.0
        assert sample.n_steps == 2
        assert sample.unique_users() == 2

    def test_empty(self):
        assert np.isnan(WalkSample().mean_degree())

    def test_reweighted_mean_is_harmonic(self):
        sample = WalkSample(user_ids=[1, 2], degrees=[10, 40])
        assert reweighted_mean_degree(sample) == pytest.approx(16.0)

    def test_reweighted_empty(self):
        assert np.isnan(reweighted_mean_degree(WalkSample()))


class TestRandomWalk:
    def test_walk_length(self, small_world, fetcher):
        rng = np.random.default_rng(0)
        sample = RandomWalkSampler(fetcher, rng).walk(
            small_world.seed_user_id(), 200, burn_in=20
        )
        assert sample.n_steps == 200
        assert sample.unique_users() > 20

    def test_degree_bias_and_correction(self, small_world, fetcher):
        """RW over-samples high-degree users; 1/d reweighting fixes it."""
        rng = np.random.default_rng(1)
        sample = RandomWalkSampler(fetcher, rng).walk(
            small_world.seed_user_id(), 1_200, burn_in=100
        )
        true_mean = 2 * small_world.graph.n_edges / small_world.n_users
        assert sample.mean_degree() > 1.5 * true_mean
        assert reweighted_mean_degree(sample) == pytest.approx(
            true_mean, rel=0.35
        )

    def test_bad_seed_rejected(self, fetcher):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            RandomWalkSampler(fetcher, rng).walk(10**9, 10)

    def test_deterministic(self, small_world, fetcher):
        seed = small_world.seed_user_id()
        a = RandomWalkSampler(fetcher, np.random.default_rng(7)).walk(seed, 50)
        b = RandomWalkSampler(fetcher, np.random.default_rng(7)).walk(seed, 50)
        assert a.user_ids == b.user_ids


class TestMHRW:
    def test_rejections_happen(self, small_world, fetcher):
        rng = np.random.default_rng(2)
        sample = MHRWSampler(fetcher, rng).walk(
            small_world.seed_user_id(), 400, burn_in=50
        )
        assert sample.rejected_moves > 0

    def test_nearly_unbiased_mean_degree(self, small_world, fetcher):
        rng = np.random.default_rng(3)
        sample = MHRWSampler(fetcher, rng).walk(
            small_world.seed_user_id(), 1_500, burn_in=150
        )
        true_mean = 2 * small_world.graph.n_edges / small_world.n_users
        assert sample.mean_degree() == pytest.approx(true_mean, rel=0.4)

    def test_less_biased_than_rw(self, small_world, fetcher):
        rng = np.random.default_rng(4)
        seed = small_world.seed_user_id()
        rw = RandomWalkSampler(fetcher, rng).walk(seed, 1_000, burn_in=100)
        mh = MHRWSampler(fetcher, rng).walk(seed, 1_000, burn_in=100)
        true_mean = 2 * small_world.graph.n_edges / small_world.n_users
        rw_bias = abs(rw.mean_degree() - true_mean)
        mh_bias = abs(mh.mean_degree() - true_mean)
        assert mh_bias < rw_bias


class TestBiasReport:
    def test_bias_of(self):
        report = SamplingBiasReport(
            true_mean_degree=20.0,
            bfs_mean_degree=30.0,
            rw_mean_degree=60.0,
            rw_reweighted_mean_degree=21.0,
            mhrw_mean_degree=19.0,
        )
        assert report.bias_of(report.rw_mean_degree) == pytest.approx(2.0)
        assert report.bias_of(report.mhrw_mean_degree) == pytest.approx(-0.05)
