"""Tests for the BFS frontier."""

from repro.crawler.frontier import BFSFrontier


class TestFrontier:
    def test_fifo_order(self):
        frontier = BFSFrontier()
        frontier.add_all([3, 1, 2])
        assert [frontier.pop() for _ in range(3)] == [3, 1, 2]

    def test_dedup_on_add(self):
        frontier = BFSFrontier()
        assert frontier.add(1)
        assert not frontier.add(1)
        assert len(frontier) == 1

    def test_popped_user_cannot_requeue(self):
        frontier = BFSFrontier()
        frontier.add(1)
        frontier.pop()
        assert not frontier.add(1)

    def test_add_all_counts_new(self):
        frontier = BFSFrontier()
        frontier.add(1)
        assert frontier.add_all([1, 2, 3]) == 2

    def test_visited_and_discovered(self):
        frontier = BFSFrontier()
        frontier.add(1)
        assert frontier.discovered(1)
        assert not frontier.visited(1)
        frontier.pop()
        assert frontier.visited(1)
        assert frontier.n_visited == 1
        assert frontier.n_discovered == 1

    def test_bool_reflects_queue(self):
        frontier = BFSFrontier()
        assert not frontier
        frontier.add(1)
        assert frontier
        frontier.pop()
        assert not frontier
