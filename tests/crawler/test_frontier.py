"""Tests for the BFS frontier."""

import numpy as np

from repro.crawler.frontier import BFSFrontier


class TestFrontier:
    def test_fifo_order(self):
        frontier = BFSFrontier()
        frontier.add_all([3, 1, 2])
        assert [frontier.pop() for _ in range(3)] == [3, 1, 2]

    def test_dedup_on_add(self):
        frontier = BFSFrontier()
        assert frontier.add(1)
        assert not frontier.add(1)
        assert len(frontier) == 1

    def test_popped_user_cannot_requeue(self):
        frontier = BFSFrontier()
        frontier.add(1)
        frontier.pop()
        assert not frontier.add(1)

    def test_add_all_counts_new(self):
        frontier = BFSFrontier()
        frontier.add(1)
        assert frontier.add_all([1, 2, 3]) == 2

    def test_visited_and_discovered(self):
        frontier = BFSFrontier()
        frontier.add(1)
        assert frontier.discovered(1)
        assert not frontier.visited(1)
        frontier.pop()
        assert frontier.visited(1)
        assert frontier.n_visited == 1
        assert frontier.n_discovered == 1

    def test_bool_reflects_queue(self):
        frontier = BFSFrontier()
        assert not frontier
        frontier.add(1)
        assert frontier
        frontier.pop()
        assert not frontier

    def test_mixed_int_and_numpy_int_dedup(self):
        # Circle lists arrive as numpy int64; seeds as python ints.  Both
        # hash identically, so the same id must dedup across the types.
        frontier = BFSFrontier()
        assert frontier.add(5)
        assert not frontier.add(np.int64(5))
        assert frontier.add(np.int64(6))
        assert not frontier.add(6)
        assert len(frontier) == 2
        assert frontier.n_discovered == 2

    def test_add_all_accepts_a_generator(self):
        frontier = BFSFrontier()
        added = frontier.add_all(uid * 2 for uid in range(4))
        assert added == 4
        assert [frontier.pop() for _ in range(4)] == [0, 2, 4, 6]

    def test_add_all_generator_with_duplicates(self):
        frontier = BFSFrontier()
        assert frontier.add_all(uid % 3 for uid in range(9)) == 3


class TestStateExport:
    def test_round_trip(self):
        frontier = BFSFrontier()
        frontier.add_all([7, 3, 9, 5])
        frontier.pop()
        state = frontier.export_state()
        restored = BFSFrontier()
        restored.restore_state(state)
        assert restored.export_state() == state
        assert [restored.pop() for _ in range(3)] == [3, 9, 5]
        assert restored.visited(7)
        assert not restored.add(7)

    def test_export_coerces_numpy_ids_to_ints(self):
        frontier = BFSFrontier()
        frontier.add(np.int64(42))
        state = frontier.export_state()
        assert type(state["queue"][0]) is int
        assert type(state["seen"][0]) is int

    def test_sets_serialise_sorted(self):
        frontier = BFSFrontier()
        frontier.add_all([9, 1, 5])
        state = frontier.export_state()
        assert state["seen"] == [1, 5, 9]
        assert state["queue"] == [9, 1, 5]  # FIFO order is preserved
