"""Tests for the hub-robustness analysis."""

import numpy as np
import pytest

from repro.analysis.robustness import (
    analyze_robustness,
    removal_curve,
    RobustnessCurve,
)
from repro.graph.csr import CSRGraph


def star_plus_ring(n_leaves: int = 30) -> CSRGraph:
    """A hub feeding leaves, plus a thin ring keeping leaves connected."""
    edges = [(0, i) for i in range(1, n_leaves + 1)]
    return CSRGraph.from_edges(edges)


class TestRemovalCurve:
    def test_zero_removal_is_baseline(self, rng):
        graph = star_plus_ring()
        curve = removal_curve(graph, "targeted", rng, np.array([0.0]))
        assert curve.giant_fractions[0] == pytest.approx(1.0)

    def test_targeted_attack_kills_star(self, rng):
        graph = star_plus_ring()
        curve = removal_curve(
            graph, "targeted", rng, np.array([0.0, 1.5 / 31])
        )
        # Removing just the hub (plus one leaf) shatters the star...
        # the star's hub is node 0 with OUT-degree; targeted uses
        # IN-degree, so attack the most-followed leaf first. Build an
        # in-star instead for the real check below.
        edges = [(i, 0) for i in range(1, 31)]
        in_star = CSRGraph.from_edges(edges)
        curve = removal_curve(in_star, "targeted", rng, np.array([0.0, 0.04]))
        assert curve.giant_fractions[1] < 0.1

    def test_random_failures_gentle(self, rng):
        edges = [(i, 0) for i in range(1, 31)]
        in_star = CSRGraph.from_edges(edges)
        curve = removal_curve(in_star, "random", rng, np.array([0.05]))
        # Removing a random ~1 node of 31 almost certainly misses the hub.
        assert curve.giant_fractions[0] > 0.5

    def test_monotone_decay_under_targeted(self, study_results, rng):
        curve = removal_curve(
            study_results.graph, "targeted", rng,
            np.array([0.0, 0.01, 0.05, 0.1]),
        )
        assert (np.diff(curve.giant_fractions) <= 1e-9).all()

    def test_unknown_strategy(self, rng):
        with pytest.raises(ValueError):
            removal_curve(star_plus_ring(), "sideways", rng)

    def test_collapse_point(self):
        curve = RobustnessCurve(
            removed_fractions=np.array([0.0, 0.1, 0.2]),
            giant_fractions=np.array([1.0, 0.6, 0.3]),
            strategy="targeted",
        )
        assert curve.collapse_point(0.5) == pytest.approx(0.2)
        assert np.isnan(curve.collapse_point(0.1))


class TestOnStudyGraph:
    def test_hubs_are_central(self, study_results, rng):
        """Targeted attack hurts far more than random failure — the
        measured form of 'hubs play a central role' (Section 3.3.1)."""
        analysis = analyze_robustness(
            study_results.graph, rng,
            fractions=np.array([0.0, 0.05, 0.2]),
        )
        # The follow-back mesh keeps the WCC robust at shallow removal
        # (as in real OSNs); the targeted-vs-random gap opens with depth.
        assert analysis.hub_dependence(0.2) > 0.05
        assert analysis.targeted.giant_at(0.05) < analysis.random.giant_at(0.05)

    def test_random_failures_barely_noticed(self, study_results, rng):
        curve = removal_curve(
            study_results.graph, "random", rng, np.array([0.05])
        )
        assert curve.giant_fractions[0] > 0.8
