"""Tests for the structural analyses (Figures 3-5, Table 4)."""

import pytest

from repro.analysis.structure import (
    analyze_degrees,
    analyze_reciprocity,
    analyze_sccs,
)
from repro.graph.csr import CSRGraph


class TestDegreeAnalysis:
    def test_power_law_shapes_on_study(self, study_results):
        f3 = study_results.fig3_degrees
        assert 1.0 < f3.in_fit.alpha < 2.0  # paper: 1.3
        assert 0.9 < f3.out_fit.alpha < 1.8  # paper: 1.2
        assert f3.in_fit.r_squared > 0.9

    def test_out_fit_windowed_at_cap(self, study_results):
        assert study_results.fig3_degrees.out_fit.x_max <= 5_000

    def test_on_hand_graph(self, rng):
        edges = [(i, j) for i in range(1, 40) for j in range(i)]
        analysis = analyze_degrees(CSRGraph.from_edges(edges))
        assert analysis.distributions.mean_in_degree > 0


class TestReciprocityAnalysis:
    def test_paper_ballpark(self, study_results):
        rr = study_results.fig4a_reciprocity
        assert 0.2 < rr.global_reciprocity < 0.55  # paper 0.32
        assert rr.global_reciprocity > 0.221  # higher than Twitter

    def test_rr_values_bounded(self, study_results):
        values = study_results.fig4a_reciprocity.rr_values
        assert (values >= 0).all() and (values <= 1).all()

    def test_fraction_above(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 0), (2, 0)])
        analysis = analyze_reciprocity(graph)
        assert analysis.fraction_rr_above(0.5) == pytest.approx(2 / 3)


class TestClusteringAnalysis:
    def test_sample_size_default_proportional(self, study_results):
        cc = study_results.fig4b_clustering
        assert cc.sample_size >= 1_000

    def test_clustered_well_above_random(self, study_results):
        """Triadic closure should put mean CC far above the random-graph
        baseline m/n^2."""
        graph = study_results.graph
        baseline = graph.n_edges / graph.n**2
        assert study_results.fig4b_clustering.mean > 10 * baseline

    def test_fraction_above_bounds(self, study_results):
        cc = study_results.fig4b_clustering
        assert 0.0 <= cc.fraction_above(0.2) <= 1.0


class TestSCCAnalysis:
    def test_giant_component_exists(self, study_results):
        scc = study_results.fig4c_sccs
        assert scc.giant_fraction > 0.5
        assert scc.n_components > 1

    def test_second_component_tiny(self, study_results):
        """The paper: only ONE component above 100 nodes."""
        sizes = study_results.fig4c_sccs.sizes()
        assert sizes[1] <= 100

    def test_on_hand_graph(self):
        analysis = analyze_sccs(CSRGraph.from_edges([(0, 1), (1, 0), (2, 3)]))
        assert analysis.giant_size == 2


class TestPathLengths:
    def test_directed_longer_than_undirected(self, study_results):
        f5 = study_results.fig5_paths
        assert f5.directed.mean >= f5.undirected.mean

    def test_modes_positive(self, study_results):
        f5 = study_results.fig5_paths
        assert f5.directed.mode >= 1
        assert f5.undirected.mode >= 1

    def test_probabilities_normalised(self, study_results):
        f5 = study_results.fig5_paths
        assert f5.directed.probabilities().sum() == pytest.approx(1.0)


class TestTable4Row:
    def test_consistency_with_other_analyses(self, study_results):
        t4 = study_results.table4_row
        assert t4.n_nodes == study_results.graph.n
        assert t4.n_edges == study_results.graph.n_edges
        assert t4.reciprocity == pytest.approx(
            study_results.fig4a_reciprocity.global_reciprocity
        )
        assert t4.avg_path_length == pytest.approx(
            study_results.fig5_paths.directed.mean
        )
        assert t4.n_sccs == study_results.fig4c_sccs.n_components

    def test_diameter_at_least_max_observed_hop(self, study_results):
        assert (
            study_results.table4_row.diameter
            >= study_results.fig5_paths.directed.max_observed
        )

    def test_mean_degree_in_paper_ballpark(self, study_results):
        assert 8 < study_results.table4_row.mean_in_degree < 35  # paper 16.4
