"""Tests for Table 1 / Table 5 analyses."""

import pytest

from repro.analysis.top_users import (
    it_fraction,
    occupation_of,
    top_users_by_in_degree,
)
from repro.platform.models import Occupation
from repro.synth.countries import TOP10_CODES


class TestTable1:
    def test_ranked_by_in_degree_descending(self, study_results):
        rows = study_results.table1_top_users
        degrees = [row.in_degree for row in rows]
        assert degrees == sorted(degrees, reverse=True)
        assert len(rows) == 20
        assert [row.rank for row in rows] == list(range(1, 21))

    def test_degrees_match_graph(self, study_results):
        graph = study_results.graph
        in_degrees = graph.in_degrees()
        top = study_results.table1_top_users[0]
        assert top.in_degree == int(in_degrees.max())

    def test_global_celebrities_dominate(self, study_results):
        names = [row.name for row in study_results.table1_top_users[:5]]
        assert any("Larry Page" in n for n in names)

    def test_it_heavy_top_list(self, study_results):
        """The paper's signature: IT figures are unusually prominent."""
        rows = study_results.table1_top_users
        it_count = sum(1 for r in rows if r.occupation is Occupation.IT)
        assert it_count >= 3

    def test_custom_k(self, study_results):
        rows = top_users_by_in_degree(
            study_results.dataset, study_results.graph, k=5
        )
        assert len(rows) == 5

    def test_it_fraction(self):
        assert it_fraction([]) == 0.0


class TestOccupationLookup:
    def test_maps_label_to_code(self, study_results):
        dataset = study_results.dataset
        for row in study_results.table1_top_users:
            if row.occupation is not None:
                assert occupation_of(dataset, row.user_id) is row.occupation

    def test_unknown_user(self, study_results):
        assert occupation_of(study_results.dataset, 10**9) is None


class TestTable5:
    def test_all_top10_countries_reported(self, study_results):
        rows = study_results.table5_occupations
        assert [row.country for row in rows] == list(TOP10_CODES)

    def test_us_jaccard_is_one(self, study_results):
        by_country = {r.country: r for r in study_results.table5_occupations}
        assert by_country["US"].jaccard_vs_us == pytest.approx(1.0)

    def test_jaccard_in_unit_interval(self, study_results):
        for row in study_results.table5_occupations:
            assert 0.0 <= row.jaccard_vs_us <= 1.0

    def test_ten_slots_per_country(self, study_results):
        for row in study_results.table5_occupations:
            assert len(row.occupations) == 10

    def test_national_celebrities_lead_their_countries(self, study_results):
        """Planted celebrities should hold a large share of the per-country
        top-10 slots (their in-ranking order may shuffle, as Table 5's rows
        are anyway occupation *sets* for the Jaccard comparison)."""
        graph = study_results.graph
        in_degrees = graph.in_degrees()
        geo = study_results.geo
        dataset = study_results.dataset
        celebrity_slots = 0
        total_slots = 0
        from repro.synth.countries import TOP10_CODES

        by_country = {code: [] for code in TOP10_CODES}
        for uid, code in zip(geo.user_ids, geo.countries):
            if code in by_country:
                by_country[code].append(int(uid))
        for code, members in by_country.items():
            ranked = sorted(
                members,
                key=lambda uid: int(in_degrees[graph.compact_index(uid)]),
                reverse=True,
            )[:10]
            total_slots += len(ranked)
            celebrity_slots += sum(
                1
                for uid in ranked
                if not dataset.profiles[uid].name.startswith("User ")
            )
        assert celebrity_slots >= total_slots // 3

    def test_codes_rendering(self, study_results):
        row = study_results.table5_occupations[0]
        rendered = row.codes()
        assert len(rendered.split()) == 10
