"""Tests for Table 2 attribute availability."""

import numpy as np
import pytest

from repro.analysis.attributes import attribute_availability
from repro.crawler.dataset import CrawlDataset
from repro.crawler.parse import ParsedProfile


class TestOnHandData:
    @pytest.fixture(scope="class")
    def rows(self):
        profiles = {
            1: ParsedProfile(user_id=1, name="a", fields={"phrase": "x"}),
            2: ParsedProfile(user_id=2, name="b", fields={"phrase": "y", "education": "z"}),
            3: ParsedProfile(user_id=3, name="c"),
        }
        dataset = CrawlDataset(
            profiles=profiles,
            sources=np.empty(0, dtype=np.int64),
            targets=np.empty(0, dtype=np.int64),
        )
        return attribute_availability(dataset)

    def test_name_first_and_universal(self, rows):
        assert rows[0].key == "name"
        assert rows[0].percent == 100.0

    def test_counts(self, rows):
        by_key = {r.key: r for r in rows}
        assert by_key["phrase"].available == 2
        assert by_key["education"].available == 1
        assert by_key["gender"].available == 0

    def test_sorted_by_availability(self, rows):
        counts = [r.available for r in rows[1:]]
        assert counts == sorted(counts, reverse=True)

    def test_all_seventeen_fields_listed(self, rows):
        assert len(rows) == 17


class TestOnStudy:
    def test_table2_shape_reproduced(self, study_results):
        by_key = {r.key: r for r in study_results.table2_attributes}
        assert by_key["name"].percent == 100.0
        assert by_key["gender"].percent == pytest.approx(97.67, abs=1.5)
        # Mid-tier fields: education/places/employment in the 20-35% band.
        for key in ("education", "places_lived", "employment"):
            assert 15 < by_key[key].percent < 40
        # Contact blocks are rare.
        assert by_key["work_contact"].percent < 1.5
        assert by_key["home_contact"].percent < 1.5

    def test_total_is_profile_count(self, study_results):
        for row in study_results.table2_attributes:
            assert row.total == study_results.dataset.n_profiles
