"""Tests for the tel-user comparison (Table 3, Figure 2)."""

import numpy as np
import pytest

from repro.analysis.tel_users import (
    compare_tel_users,
    fields_shared_ccdfs,
    tel_user_ids,
)
from repro.crawler.dataset import CrawlDataset
from repro.crawler.parse import ParsedProfile
from repro.geo.index import build_geo_index
from repro.platform.models import ContactInfo, Gender, Place, Relationship


def hand_dataset() -> CrawlDataset:
    profiles = {
        1: ParsedProfile(
            user_id=1, name="tel",
            fields={
                "gender": Gender.MALE,
                "relationship": Relationship.SINGLE,
                "work_contact": ContactInfo(phone="+1"),
                "places_lived": [Place("Mumbai", 19.08, 72.88, "IN")],
                "education": "x", "phrase": "y",
            },
        ),
        2: ParsedProfile(
            user_id=2, name="plain",
            fields={
                "gender": Gender.FEMALE,
                "places_lived": [Place("New York", 40.71, -74.01, "US")],
            },
        ),
        3: ParsedProfile(user_id=3, name="minimal"),
    }
    return CrawlDataset(
        profiles=profiles,
        sources=np.empty(0, dtype=np.int64),
        targets=np.empty(0, dtype=np.int64),
    )


class TestHandData:
    @pytest.fixture(scope="class")
    def comparison(self):
        dataset = hand_dataset()
        return compare_tel_users(dataset, build_geo_index(dataset))

    def test_tel_user_detection(self):
        assert tel_user_ids(hand_dataset()) == [1]

    def test_counts(self, comparison):
        assert comparison.n_all == 3
        assert comparison.n_tel == 1
        assert comparison.tel_rate == pytest.approx(1 / 3)

    def test_gender_shares(self, comparison):
        assert comparison.gender_all.shares["Male"] == pytest.approx(0.5)
        assert comparison.gender_tel.shares["Male"] == pytest.approx(1.0)
        assert comparison.gender_all.total == 2  # user 3 shares no gender

    def test_relationship_shares(self, comparison):
        assert comparison.relationship_tel.shares["Single"] == pytest.approx(1.0)
        assert comparison.relationship_all.total == 1

    def test_location_shares(self, comparison):
        assert comparison.location_tel.shares["IN"] == pytest.approx(1.0)
        assert comparison.location_all.shares["US"] == pytest.approx(0.5)
        assert comparison.location_all.shares["Other"] == 0.0


class TestFigure2:
    def test_hand_curves(self):
        ccdfs = fields_shared_ccdfs(hand_dataset())
        # user1: name+gender+relationship+places+education+phrase = 6
        assert ccdfs.tel_counts.tolist() == [6]
        assert sorted(ccdfs.all_counts.tolist()) == [1, 3, 6]
        assert ccdfs.fraction_sharing_more_than(2, "all") == pytest.approx(2 / 3)

    def test_empty_tel_users_rejected(self):
        dataset = hand_dataset()
        del dataset.profiles[1]
        with pytest.raises(ValueError):
            fields_shared_ccdfs(dataset)


class TestOnStudy:
    def test_tel_rate_near_paper(self, study_results):
        assert study_results.table3_tel_users.tel_rate == pytest.approx(
            0.0026, abs=0.0015
        )

    def test_tel_users_skew_male(self, study_results):
        t3 = study_results.table3_tel_users
        assert t3.gender_tel.shares["Male"] > t3.gender_all.shares["Male"]

    def test_tel_users_share_more_fields(self, study_results):
        f2 = study_results.fig2_fields
        # ~8 crawled tel-users at study scale: assert the gap direction
        # with slack; the bench at 12k asserts a 0.18 gap.
        assert f2.fraction_sharing_more_than(6, "tel") > (
            f2.fraction_sharing_more_than(6, "all") + 0.08
        )

    def test_population_gender_matches_table3(self, study_results):
        shares = study_results.table3_tel_users.gender_all.shares
        assert shares["Male"] == pytest.approx(0.6765, abs=0.03)
        assert shares["Female"] == pytest.approx(0.3146, abs=0.03)

    def test_population_single_share_matches_table3(self, study_results):
        shares = study_results.table3_tel_users.relationship_all.shares
        assert shares["Single"] == pytest.approx(0.4282, abs=0.06)
