"""Tests for the Section 4 analyses (Figures 6-10)."""

import numpy as np
import pytest

from repro.analysis.geo_dist import penetration_analysis, top_countries
from repro.analysis.openness import openness_by_country
from repro.synth.countries import TOP10_CODES


class TestFig6TopCountries:
    def test_fractions_sum_below_one(self, study_results):
        total = sum(c.fraction for c in study_results.fig6_countries)
        assert 0.3 < total <= 1.0

    def test_descending_order(self, study_results):
        fractions = [c.fraction for c in study_results.fig6_countries]
        assert fractions == sorted(fractions, reverse=True)

    def test_paper_top_three(self, study_results):
        codes = [c.code for c in study_results.fig6_countries[:3]]
        assert codes == ["US", "IN", "BR"]

    def test_us_share_near_paper(self, study_results):
        us = study_results.fig6_countries[0]
        assert us.fraction == pytest.approx(0.3138, abs=0.06)

    def test_top10_mostly_paper_countries(self, study_results):
        codes = {c.code for c in study_results.fig6_countries}
        assert len(codes & set(TOP10_CODES)) >= 8

    def test_custom_k(self, study_results):
        assert len(top_countries(study_results.geo, k=3)) == 3


class TestFig7Penetration:
    def test_india_leads_gpr(self, study_results):
        ranked = study_results.fig7_penetration.ranked_by_gpr()
        assert ranked[0].code == "IN"

    def test_ipr_tracks_gdp(self, study_results):
        assert study_results.fig7_penetration.ipr_gdp_correlation > 0.6

    def test_gpr_decoupled_from_gdp(self, study_results):
        f7 = study_results.fig7_penetration
        assert f7.gpr_gdp_correlation < f7.ipr_gdp_correlation - 0.2

    def test_points_have_positive_denominators(self, study_results):
        for point in study_results.fig7_penetration.points:
            assert point.gplus_penetration >= 0
            assert point.gdp_per_capita > 0

    def test_explicit_codes(self, study_results):
        analysis = penetration_analysis(study_results.geo, codes=["US", "IN"])
        assert [p.code for p in analysis.points] == ["US", "IN"]


class TestFig8Openness:
    def test_all_top10_curves_present(self, study_results):
        assert set(study_results.fig8_openness.by_country) == set(TOP10_CODES)

    def test_minimum_two_fields(self, study_results):
        """Name is mandatory and places-lived defines the sample."""
        for country in study_results.fig8_openness.by_country.values():
            assert country.counts.min() >= 2

    def test_germany_conservative(self, study_results):
        ranking = study_results.fig8_openness.ranking()
        assert "DE" in ranking[-3:]

    def test_indonesia_or_mexico_open(self, study_results):
        ranking = study_results.fig8_openness.ranking()
        assert {"ID", "MX"} & set(ranking[:3])

    def test_error_on_missing_country(self, study_results):
        with pytest.raises(ValueError):
            openness_by_country(
                study_results.dataset, study_results.geo, ["ZZ"]
            )


class TestFig9PathMiles:
    def test_ordering_reciprocal_friends_random(self, study_results):
        assert study_results.fig9a_path_miles.ordering_holds()

    def test_friends_within_1000_near_paper(self, study_results):
        value = study_results.fig9a_path_miles.friends_within_1000mi()
        assert value == pytest.approx(0.58, abs=0.17)

    def test_friends_within_10_near_paper(self, study_results):
        value = study_results.fig9a_path_miles.friends_within_10mi()
        assert value == pytest.approx(0.15, abs=0.12)

    def test_median_ordering(self, study_results):
        f9 = study_results.fig9a_path_miles
        assert f9.median_miles("reciprocal") <= f9.median_miles("friends")
        assert f9.median_miles("friends") <= f9.median_miles("random_pairs")

    def test_country_averages_positive(self, study_results):
        stats = study_results.fig9b_country_miles.stats
        assert set(stats) == set(TOP10_CODES)
        for code in TOP10_CODES:
            mean = study_results.fig9b_country_miles.average(code)
            assert np.isnan(mean) or mean > 0


class TestFig10LinkGeography:
    def test_rows_normalised(self, study_results):
        weights = study_results.fig10_links.graph.weights
        sums = weights.sum(axis=1)
        assert np.allclose(sums[sums > 0], 1.0)

    def test_us_dominant_sink(self, study_results):
        assert study_results.fig10_links.us_is_dominant_sink()

    def test_inward_countries(self, study_results):
        inward = set(study_results.fig10_links.inward_looking(0.5))
        assert {"US", "IN"} <= inward

    def test_outward_countries(self, study_results):
        outward = set(study_results.fig10_links.outward_looking(0.45))
        assert "GB" in outward or "CA" in outward

    def test_self_loops_near_paper(self, study_results):
        from repro.core.paper_tables import GooglePlusPaper

        graph = study_results.fig10_links.graph
        # Small countries hold only ~20 located users at study scale, so
        # their self-loop estimates carry wide error bars; the bench at
        # 12k users asserts abs=0.15.
        for code, paper_value in GooglePlusPaper.SELF_LOOPS.items():
            assert graph.self_loop(code) == pytest.approx(paper_value, abs=0.25)
