"""Tests for the measured cross-network Table 4."""

import pytest

from repro.analysis.cross_network import compare_networks


@pytest.fixture(scope="module")
def comparison(study_results):
    return compare_networks(
        study_results.graph, seed=1, baseline_n=2_000, path_samples=150
    )


class TestCrossNetwork:
    def test_all_four_networks_measured(self, comparison):
        assert set(comparison.rows) == {
            "Google+", "Twitter-like", "Facebook-like", "Orkut-like",
        }

    def test_reciprocity_ordering(self, comparison):
        """Twitter 22% < Google+ 32% < Facebook/Orkut 100% (Table 4)."""
        assert comparison.reciprocity_ordering_holds()

    def test_degree_ordering(self, comparison):
        assert comparison.degree_ordering_holds()

    def test_all_rows_connected_enough(self, comparison):
        for name, summary in comparison.rows.items():
            assert summary.giant_scc_fraction > 0.3, name

    def test_path_lengths_finite(self, comparison):
        for name, summary in comparison.rows.items():
            assert summary.avg_path_length > 1.0, name
            assert summary.diameter >= summary.avg_path_length / 2, name
