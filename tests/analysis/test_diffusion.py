"""Tests for the diffusion analysis."""

import numpy as np
import pytest

from repro.analysis.diffusion import analyze_diffusion, ReachComparison
from repro.synth.activity import Cascade, ActivityLog, simulate_activity


@pytest.fixture(scope="module")
def analysis(small_world):
    log = simulate_activity(small_world, seed=3)
    return analyze_diffusion(log, small_world.population)


class TestOnSimulatedActivity:
    def test_sizes_and_depths_aligned(self, analysis):
        assert len(analysis.cascade_sizes) == len(analysis.cascade_depths)
        assert analysis.cascade_sizes.min() >= 1
        assert analysis.cascade_depths.min() >= 0

    def test_heavy_tail(self, analysis):
        """A few cascades dwarf the median — hubs seed the big trees."""
        assert analysis.max_cascade() > 5 * np.median(analysis.cascade_sizes)

    def test_public_posts_reach_farther(self, analysis):
        assert analysis.reach.reach_ratio > 2.0

    def test_public_share_sane(self, analysis):
        assert 0.2 < analysis.reach.public_share < 0.9

    def test_viral_fraction_bounds(self, analysis):
        assert 0.0 <= analysis.viral_fraction() <= 1.0

    def test_country_breakdown(self, small_world):
        log = simulate_activity(small_world, seed=3)
        analysis = analyze_diffusion(
            log, small_world.population, countries=["US", "DE"]
        )
        assert set(analysis.by_country) <= {"US", "DE"}
        us = analysis.by_country["US"]
        assert us.n_posts > 0
        assert 0.0 <= us.public_share <= 1.0

    def test_open_cultures_post_more_publicly(self, small_world):
        """The §4.3 openness ordering shows up in posting behaviour."""
        log = simulate_activity(small_world, seed=3)
        analysis = analyze_diffusion(
            log, small_world.population, countries=["ID", "DE"]
        )
        if {"ID", "DE"} <= set(analysis.by_country):
            assert (
                analysis.by_country["ID"].public_share
                > analysis.by_country["DE"].public_share
            )


class TestOnHandData:
    def make_log(self):
        cascades = [
            Cascade(1, 0, True, reshare_post_ids=[2, 3], resharer_ids=[1, 2],
                    depth=2, plus_ones=5, audience=40),
            Cascade(4, 1, False, audience=4),
            Cascade(5, 2, False, audience=6),
        ]
        return ActivityLog(cascades=cascades, n_posts=3, n_reshares=2, n_plus_ones=5)

    def test_reach_comparison(self, small_world):
        analysis = analyze_diffusion(self.make_log(), small_world.population)
        reach = analysis.reach
        assert reach.n_public == 1
        assert reach.n_scoped == 2
        assert reach.public_mean_audience == 40.0
        assert reach.scoped_mean_audience == 5.0
        assert reach.reach_ratio == pytest.approx(8.0)
        assert reach.public_share == pytest.approx(1 / 3)

    def test_reach_ratio_degenerate(self):
        reach = ReachComparison(1, 0, 10.0, 0.0, 1.0)
        assert reach.reach_ratio == float("inf")

    def test_empty_log(self, small_world):
        analysis = analyze_diffusion(
            ActivityLog(cascades=[]), small_world.population
        )
        assert analysis.max_cascade() == 0
        assert np.isnan(analysis.viral_fraction())
