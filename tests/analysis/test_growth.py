"""Tests for the growth-phase analysis."""

import numpy as np
import pytest

from repro.analysis.growth import (
    analyze_growth,
    find_stabilization,
    find_tipping_point,
    fit_densification,
    SnapshotMetrics,
)
from repro.synth.growth import build_timeline, OPEN_SIGNUP_DAY


@pytest.fixture(scope="module")
def growth(small_world):
    timeline = build_timeline(
        small_world.graph, small_world.config.field_trial_fraction, seed=21
    )
    return analyze_growth(timeline, seed=2, n_snapshots=6, path_samples=60)


class TestPhaseDetection:
    def test_tipping_point_at_open_signup(self, growth):
        assert growth.tipping_day == pytest.approx(OPEN_SIGNUP_DAY, abs=10)

    def test_stabilization_after_tipping(self, growth):
        assert growth.stabilization_day > growth.tipping_day

    def test_on_synthetic_curve(self):
        days = np.arange(0, 100.0)
        # Flat, then a jump at day 50, then flat growth again.
        adoption = np.where(days < 50, days, 50 + 20 * (days - 49))
        assert find_tipping_point(days, adoption) == pytest.approx(50, abs=2)

    def test_stabilization_on_synthetic_curve(self):
        days = np.arange(0, 100.0)
        daily = np.where((days >= 40) & (days < 60), 50.0, 1.0)
        adoption = np.cumsum(daily)
        stabilization = find_stabilization(days, adoption)
        assert 59 <= stabilization <= 70


class TestDensification:
    def test_superlinear_edge_growth(self, growth):
        """Leskovec densification: a > 1 (paper Section 5)."""
        assert growth.densifies()
        assert 1.0 < growth.densification_exponent < 3.0

    def test_fit_on_exact_power_law(self):
        snapshots = [
            SnapshotMetrics(0, n, int(n**1.5), 0, float("nan"), 0)
            for n in (100, 1_000, 10_000)
        ]
        assert fit_densification(snapshots) == pytest.approx(1.5, abs=0.01)

    def test_fit_needs_two_points(self):
        assert np.isnan(fit_densification([]))


class TestSnapshotSeries:
    def test_monotone_nodes_and_edges(self, growth):
        nodes = [s.n_nodes for s in growth.snapshots]
        edges = [s.n_edges for s in growth.snapshots]
        assert nodes == sorted(nodes)
        assert edges == sorted(edges)

    def test_mean_degree_grows(self, growth):
        degrees = [s.mean_degree for s in growth.snapshots]
        assert degrees[-1] > degrees[0]

    def test_reciprocity_develops_over_time(self, growth):
        assert growth.snapshots[-1].reciprocity > 0.2

    def test_mature_paths_shorter_than_adolescent(self, growth):
        """The paper's hypothesis: the young (just-opened) network has
        longer paths than the mature one — densification shrinks them."""
        defined = [
            s for s in growth.snapshots if np.isfinite(s.mean_path_length)
        ]
        adolescent = max(defined, key=lambda s: s.mean_path_length)
        mature = defined[-1]
        assert adolescent.mean_path_length >= mature.mean_path_length
        assert adolescent.day <= mature.day
