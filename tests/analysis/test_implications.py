"""Tests for the Section 6 implications engine."""

import pytest

from repro.analysis.implications import campaign_countries, derive_strategies
from repro.platform.models import Occupation
from repro.synth.countries import TOP10_CODES


@pytest.fixture(scope="module")
def strategies(study_results):
    return derive_strategies(study_results)


class TestDeriveStrategies:
    def test_covers_top10(self, strategies):
        assert set(strategies) == set(TOP10_CODES)

    def test_inward_countries_get_domestic_recommendations(self, strategies):
        """§6: 'recommend domestic users and their content for those
        countries that have high degree of self-loop such as Brazil and
        India'."""
        for code in ("US", "IN", "BR"):
            assert strategies[code].recommend_scope == "domestic"

    def test_outward_countries_get_foreign_recommendations(self, strategies):
        """§6: '...recommend foreign users and content to those in
        Germany and United Kingdom due to their low fraction of
        self-loops' (GB/CA are the clear cases at our scale)."""
        assert strategies["GB"].recommend_scope == "foreign"
        assert strategies["CA"].recommend_scope == "foreign"

    def test_self_loop_carried(self, strategies, study_results):
        graph = study_results.fig10_links.graph
        for code, strategy in strategies.items():
            assert strategy.self_loop == pytest.approx(graph.self_loop(code))

    def test_privacy_posture_tiers(self, strategies):
        postures = {s.privacy_posture for s in strategies.values()}
        assert postures <= {"open", "moderate", "conservative"}
        assert sum(
            1 for s in strategies.values() if s.privacy_posture == "open"
        ) == 3

    def test_featured_occupation_labelled(self, strategies):
        for strategy in strategies.values():
            assert isinstance(strategy.featured_label, str)
            assert strategy.featured_label


class TestCampaigns:
    def test_spain_is_the_political_market(self, strategies):
        """§6: 'running a political campaign ... may not turn out
        successful for many countries, except for in Spain'."""
        viable = campaign_countries(strategies)
        if strategies["ES"].featured_occupation is not None:
            # Politicians only appear in the Spanish top list (Table 5).
            assert set(viable) <= {"ES"}

    def test_viability_matches_occupations(self, strategies, study_results):
        by_country = {
            row.country: row.occupations
            for row in study_results.table5_occupations
        }
        for code in campaign_countries(strategies):
            assert Occupation.POLITICIAN in set(by_country[code])
