"""Tests for the content-activity simulation."""

import pytest

from repro.synth.activity import ActivityConfig, simulate_activity


@pytest.fixture(scope="module")
def log(small_world):
    return simulate_activity(small_world, seed=3)


class TestSimulation:
    def test_posts_generated(self, log):
        assert log.n_posts > 100
        assert len(log.cascades) == log.n_posts

    def test_counts_consistent(self, log):
        assert log.n_reshares == sum(
            len(c.reshare_post_ids) for c in log.cascades
        )
        assert log.n_plus_ones == sum(c.plus_ones for c in log.cascades)

    def test_posts_exist_in_service(self, small_world, log):
        service = small_world.service
        cascade = log.cascades[0]
        assert service.can_view_post(cascade.root_post_id, cascade.author_id)

    def test_public_and_scoped_posts_both_occur(self, log):
        assert log.public_cascades()
        assert log.scoped_cascades()

    def test_reshares_reference_parents(self, small_world, log):
        service = small_world.service
        for cascade in log.cascades[:100]:
            for post_id in cascade.reshare_post_ids:
                assert service._posts[post_id].reshared_from is not None

    def test_cascade_structure(self, log):
        for cascade in log.cascades:
            assert cascade.size == 1 + len(cascade.reshare_post_ids)
            assert cascade.audience >= len(cascade.resharer_ids)
            if cascade.reshare_post_ids:
                assert cascade.depth >= 1
            else:
                assert cascade.depth == 0

    def test_resharers_could_see_the_content(self, small_world, log):
        """Circle-scoped cascades only spread through permitted viewers."""
        service = small_world.service
        for cascade in log.scoped_cascades()[:50]:
            for resharer in cascade.resharer_ids:
                # The resharer saw *some* post of the cascade; at minimum
                # they must not be a complete stranger to it: they follow
                # someone in the cascade.
                followees = set(service.followees(resharer))
                participants = {cascade.author_id, *cascade.resharer_ids}
                assert followees & participants

    def test_deterministic(self, small_world):
        a = simulate_activity(small_world, seed=8, max_users=300)
        b = simulate_activity(small_world, seed=8, max_users=300)
        assert a.n_posts == b.n_posts
        assert a.n_reshares == b.n_reshares

    def test_max_users_limits_authors(self, small_world):
        log = simulate_activity(small_world, seed=2, max_users=100)
        assert all(c.author_id < 100 for c in log.cascades)

    def test_cascade_size_cap(self, small_world):
        config = ActivityConfig(
            reshare_prob=1.0, reshare_depth_decay=1.0, max_cascade_size=10
        )
        log = simulate_activity(small_world, config, seed=1, max_users=50)
        # The cap breaks the loop as soon as it is crossed; one queue
        # drain may still append a bounded overshoot.
        assert max(c.size for c in log.cascades) <= 10 + config.max_audience_sample
