"""Calibration acceptance suite: the fast engine matches the reference.

The two engines are *statistically* equivalent, not bitwise: each asserts
the paper's calibration targets on its own, and the fast engine must land
within a documented tolerance of the reference on every target (the
tolerance table lives in ``docs/synth.md``). Runs at n=20k by default —
large enough for stable exponents — override with
``REPRO_CALIBRATION_USERS`` for quicker smoke runs.
"""

import os

import numpy as np
import pytest

from repro.graph.clustering import average_clustering
from repro.graph.csr import CSRGraph
from repro.graph.powerlaw import fit_powerlaw
from repro.graph.reciprocity import global_reciprocity
from repro.graph.sampling import sample_nodes
from repro.synth import build_world, WorldConfig

CALIBRATION_USERS = int(os.environ.get("REPRO_CALIBRATION_USERS", "20000"))

#: Countries with enough users at n=20k for stable domesticity rows.
ROW_COUNTRIES = ("US", "IN", "GB", "BR", "DE")
MIN_ROW_EDGES = 200


class EngineStats:
    """Every calibration target, computed once per engine."""

    def __init__(self, engine: str):
        world = build_world(
            WorldConfig(n_users=CALIBRATION_USERS, engine=engine)
        )
        graph = world.graph
        n = world.n_users
        csr = CSRGraph.from_edge_arrays(
            graph.sources, graph.targets, node_ids=np.arange(n)
        )
        in_degrees = csr.in_degrees()
        self.n_edges = graph.n_edges
        self.mean_degree = graph.n_edges / n
        self.alpha = fit_powerlaw(in_degrees, x_min=10).alpha
        self.reciprocity = global_reciprocity(csr)
        self.clustering = average_clustering(
            csr, sample_nodes(csr, 600, np.random.default_rng(0))
        )
        codes = np.asarray(world.population.country_codes)
        src_c, dst_c = codes[graph.sources], codes[graph.targets]
        self.domesticity = float((src_c == dst_c).mean())
        self.domesticity_rows = {}
        for country in ROW_COUNTRIES:
            outgoing = src_c == country
            if outgoing.sum() >= MIN_ROW_EDGES:
                self.domesticity_rows[country] = float(
                    (dst_c[outgoing] == country).mean()
                )
        celebrity = np.zeros(n, dtype=bool)
        celebrity[list(world.population.celebrity_spec)] = True
        out_counts = np.bincount(graph.sources, minlength=n)
        self.max_ordinary_out = int(out_counts[~celebrity].max())
        self.out_degree_cap = world.config.graph.out_degree_cap
        top10 = np.argsort(-in_degrees)[:10]
        self.top10_celebrities = int(celebrity[csr.node_ids[top10]].sum())


@pytest.fixture(scope="module")
def reference():
    return EngineStats("reference")


@pytest.fixture(scope="module")
def fast():
    return EngineStats("fast")


class TestAbsoluteTargets:
    """Each engine hits the paper's calibration targets on its own."""

    @pytest.fixture(scope="class", params=["reference", "fast"])
    def stats(self, request, reference, fast):
        return reference if request.param == "reference" else fast

    def test_mean_degree(self, stats):
        assert 8 < stats.mean_degree < 35  # paper: 16.4

    def test_in_degree_powerlaw_alpha(self, stats):
        assert 1.0 < stats.alpha < 1.6  # paper fits 1.3

    def test_reciprocity(self, stats):
        assert 0.25 < stats.reciprocity < 0.40  # paper: ~32%

    def test_clustering(self, stats):
        assert 0.10 < stats.clustering < 0.30  # paper Figure 4b regime

    def test_us_mostly_domestic(self, stats):
        assert stats.domesticity_rows["US"] > 0.6  # Figure 10: 0.76

    def test_out_degree_cap_knee(self, stats):
        # Ordinary users never exceed the 5 000-contact cap, while the
        # Pareto tail still pushes some of them well toward it.
        assert stats.max_ordinary_out <= stats.out_degree_cap
        assert stats.max_ordinary_out > 0.4 * stats.out_degree_cap

    def test_celebrities_dominate_top_indegree(self, stats):
        assert stats.top10_celebrities >= 7


class TestEngineEquivalence:
    """The fast engine stays within tolerance of the reference."""

    def test_edge_volume(self, reference, fast):
        assert fast.n_edges == pytest.approx(reference.n_edges, rel=0.15)

    def test_alpha(self, reference, fast):
        assert abs(fast.alpha - reference.alpha) <= 0.15

    def test_reciprocity(self, reference, fast):
        assert abs(fast.reciprocity - reference.reciprocity) <= 0.03

    def test_clustering(self, reference, fast):
        assert abs(fast.clustering - reference.clustering) <= 0.05

    def test_domesticity(self, reference, fast):
        assert abs(fast.domesticity - reference.domesticity) <= 0.03

    def test_domesticity_rows(self, reference, fast):
        shared = reference.domesticity_rows.keys() & fast.domesticity_rows.keys()
        assert "US" in shared
        for country in shared:
            assert fast.domesticity_rows[country] == pytest.approx(
                reference.domesticity_rows[country], abs=0.06
            ), country
