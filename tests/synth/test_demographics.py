"""Tests for demographic distributions and tel-user weighting."""

import numpy as np
import pytest

from repro.platform.models import Gender, Relationship
from repro.synth.demographics import (
    DemographicsSampler,
    FIELD_SHARE_PROBABILITY,
    GENDER_DISTRIBUTION,
    RELATIONSHIP_DISTRIBUTION,
    TEL_GENDER_AFFINITY,
    TEL_RELATIONSHIP_AFFINITY,
    TEL_USER_RATE,
    tel_user_weights,
)


class TestDistributionTables:
    def test_gender_sums_to_one(self):
        assert sum(GENDER_DISTRIBUTION.values()) == pytest.approx(1.0, abs=0.01)

    def test_relationship_sums_to_one(self):
        assert sum(RELATIONSHIP_DISTRIBUTION.values()) == pytest.approx(1.0, abs=0.01)

    def test_relationship_covers_all_nine_statuses(self):
        assert set(RELATIONSHIP_DISTRIBUTION) == set(Relationship)

    def test_field_probabilities_match_table2(self):
        assert FIELD_SHARE_PROBABILITY["gender"] == pytest.approx(0.9767)
        assert FIELD_SHARE_PROBABILITY["places_lived"] == pytest.approx(0.2675)
        assert FIELD_SHARE_PROBABILITY["home_contact"] == pytest.approx(0.0021)

    def test_field_probabilities_in_range(self):
        for probability in FIELD_SHARE_PROBABILITY.values():
            assert 0.0 < probability < 1.0

    def test_tel_rate_matches_paper(self):
        assert TEL_USER_RATE == pytest.approx(72_736 / 27_556_390, abs=3e-4)

    def test_tel_affinities_express_paper_skews(self):
        assert TEL_GENDER_AFFINITY[Gender.MALE] > 1.0
        assert TEL_GENDER_AFFINITY[Gender.FEMALE] < 1.0
        assert TEL_RELATIONSHIP_AFFINITY[Relationship.SINGLE] > 1.0
        assert TEL_RELATIONSHIP_AFFINITY[Relationship.IN_A_RELATIONSHIP] < 1.0


class TestSampler:
    def test_gender_frequencies(self):
        sampler = DemographicsSampler(np.random.default_rng(0))
        genders = sampler.sample_genders(20_000)
        male_share = sum(1 for g in genders if g is Gender.MALE) / len(genders)
        assert male_share == pytest.approx(0.6765, abs=0.02)

    def test_relationship_frequencies(self):
        sampler = DemographicsSampler(np.random.default_rng(0))
        statuses = sampler.sample_relationships(20_000)
        single = sum(1 for s in statuses if s is Relationship.SINGLE) / len(statuses)
        assert single == pytest.approx(0.4282, abs=0.02)

    def test_disclosure_mean_one(self):
        sampler = DemographicsSampler(np.random.default_rng(0))
        disclosure = sampler.sample_disclosure(50_000)
        assert disclosure.mean() == pytest.approx(1.0, abs=0.03)
        assert (disclosure > 0).all()

    def test_deterministic_under_seed(self):
        a = DemographicsSampler(np.random.default_rng(9)).sample_genders(100)
        b = DemographicsSampler(np.random.default_rng(9)).sample_genders(100)
        assert a == b


class TestTelWeights:
    def test_skews_combine(self):
        genders = [Gender.MALE, Gender.FEMALE]
        statuses = [Relationship.SINGLE, Relationship.SINGLE]
        disclosure = np.ones(2)
        affinity = np.ones(2)
        weights = tel_user_weights(genders, statuses, disclosure, affinity)
        assert weights[0] > weights[1]  # male > female at same everything else

    def test_disclosure_dominates(self):
        genders = [Gender.MALE, Gender.MALE]
        statuses = [Relationship.SINGLE, Relationship.SINGLE]
        weights = tel_user_weights(
            genders, statuses, np.array([0.5, 3.0]), np.ones(2)
        )
        assert weights[1] > weights[0] * 10

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            tel_user_weights([Gender.MALE], [], np.ones(1), np.ones(1))
