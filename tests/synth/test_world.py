"""Tests for world assembly."""

import numpy as np
import pytest

from repro.synth import build_world, WorldConfig


class TestWorldAssembly:
    def test_service_holds_every_user(self, small_world):
        assert len(small_world.service) == small_world.n_users

    def test_service_edges_match_generated_graph(self, small_world):
        service = small_world.service
        total_out = sum(service.out_degree(uid) for uid in service.user_ids())
        assert total_out == small_world.graph.n_edges

    def test_followers_consistent_with_edges(self, small_world):
        service = small_world.service
        sources, targets = small_world.true_edge_arrays()
        u, v = int(sources[0]), int(targets[0])
        assert v in service.followees(u)
        assert u in service.followers(v)

    def test_seed_user_is_zuckerberg(self, small_world):
        seed = small_world.seed_user_id()
        assert small_world.profiles[seed].name == "Mark Zuckerberg"

    def test_open_signup_enabled_after_build(self, small_world):
        assert small_world.service.open_signup

    def test_celebrities_exempt_from_circle_limit(self, small_world):
        service = small_world.service
        for user_id in small_world.population.celebrity_spec:
            assert service._account(user_id).circles.exempt_from_limit

    def test_frontend_serves_profiles(self, small_world):
        from repro.platform.http import Request

        frontend = small_world.frontend()
        response = frontend.handle(Request("/u/0", "1.1.1.1"))
        assert response.ok
        assert response.payload.user_id == 0

    def test_display_limit_passed_through(self):
        world = build_world(
            WorldConfig(n_users=500, seed=2, circle_display_limit=50)
        )
        assert world.service.circle_display_limit == 50

    def test_deterministic_build(self):
        a = build_world(WorldConfig(n_users=600, seed=33))
        b = build_world(WorldConfig(n_users=600, seed=33))
        assert np.array_equal(a.graph.sources, b.graph.sources)
        assert a.profiles[10].public_field_keys() == b.profiles[10].public_field_keys()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorldConfig(n_users=500, seed=1, field_trial_fraction=1.5)
        with pytest.raises(ValueError):
            WorldConfig(n_users=500, seed=1, tel_user_rate=1.0)
