"""Tests for the social-graph generator."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.reciprocity import global_reciprocity
from repro.synth.config import GraphGenConfig, WorldConfig
from repro.synth.graphgen import generate_graph
from repro.synth.profiles import generate_population

N = 2_000


@pytest.fixture(scope="module")
def population():
    config = WorldConfig(n_users=N, seed=5)
    return generate_population(config, np.random.default_rng(config.seed))


@pytest.fixture(scope="module")
def generated(population):
    return generate_graph(
        population, GraphGenConfig(), np.random.default_rng(17)
    )


class TestEdgeValidity:
    def test_no_self_loops(self, generated):
        assert not (generated.sources == generated.targets).any()

    def test_no_duplicate_edges(self, generated):
        pairs = set(zip(generated.sources.tolist(), generated.targets.tolist()))
        assert len(pairs) == generated.n_edges

    def test_ids_in_range(self, generated):
        assert generated.sources.min() >= 0
        assert generated.targets.max() < N

    def test_every_user_has_an_edge(self, generated):
        touched = set(generated.sources.tolist()) | set(generated.targets.tolist())
        assert len(touched) > 0.99 * N  # out-degree wish >= 1 for everyone


class TestStructuralTargets:
    @pytest.fixture(scope="class")
    def csr(self, generated):
        return CSRGraph.from_edge_arrays(
            generated.sources, generated.targets,
            node_ids=np.arange(N),
        )

    def test_mean_degree_in_paper_ballpark(self, csr):
        mean_degree = csr.n_edges / csr.n
        assert 8 < mean_degree < 35  # paper: 16.4

    def test_reciprocity_in_paper_ballpark(self, csr):
        assert 0.2 < global_reciprocity(csr) < 0.55  # paper: 0.32

    def test_in_degree_heavy_tail(self, csr):
        in_degrees = csr.in_degrees()
        assert in_degrees.max() > 20 * in_degrees.mean()

    def test_celebrities_top_in_degree(self, population, csr):
        in_degrees = csr.in_degrees()
        top5 = set(np.argsort(-in_degrees)[:5].tolist())
        celebrity_hits = sum(
            1 for node in top5 if int(csr.node_ids[node]) in population.celebrity_spec
        )
        assert celebrity_hits >= 3

    def test_out_degree_cap_for_ordinary_users(self, population, generated):
        cap = GraphGenConfig().out_degree_cap
        out_counts = np.bincount(generated.sources, minlength=N)
        for user_id in np.flatnonzero(out_counts > cap):
            assert int(user_id) in population.celebrity_spec

    def test_domesticity_shapes_edges(self, population, generated):
        """US users' edges should be mostly domestic (domesticity 0.76)."""
        codes = population.country_codes
        us_edges = [
            codes[int(v)] == "US"
            for u, v in zip(generated.sources, generated.targets)
            if codes[int(u)] == "US"
        ]
        assert np.mean(us_edges) > 0.6

    def test_gb_edges_flow_to_us(self, population, generated):
        codes = population.country_codes
        gb_targets = [
            codes[int(v)]
            for u, v in zip(generated.sources, generated.targets)
            if codes[int(u)] == "GB"
        ]
        us_share = gb_targets.count("US") / len(gb_targets)
        assert us_share > 0.2  # Figure 10: GB->US ~0.36


class TestDeterminismAndAblation:
    def test_same_seed_same_graph(self, population):
        a = generate_graph(population, GraphGenConfig(), np.random.default_rng(3))
        b = generate_graph(population, GraphGenConfig(), np.random.default_rng(3))
        assert np.array_equal(a.sources, b.sources)
        assert np.array_equal(a.targets, b.targets)

    def test_different_seed_different_graph(self, population):
        a = generate_graph(population, GraphGenConfig(), np.random.default_rng(3))
        b = generate_graph(population, GraphGenConfig(), np.random.default_rng(4))
        assert not (
            len(a.sources) == len(b.sources)
            and np.array_equal(a.sources, b.sources)
            and np.array_equal(a.targets, b.targets)
        )

    def test_triadic_closure_raises_clustering(self, population):
        from repro.graph.clustering import average_clustering
        from repro.graph.sampling import sample_nodes

        def clustering_for(triadic_prob: float) -> float:
            generated = generate_graph(
                population,
                GraphGenConfig(triadic_prob=triadic_prob),
                np.random.default_rng(8),
            )
            csr = CSRGraph.from_edge_arrays(
                generated.sources, generated.targets, node_ids=np.arange(N)
            )
            rng = np.random.default_rng(0)
            return average_clustering(csr, sample_nodes(csr, 400, rng))

        assert clustering_for(0.5) > clustering_for(0.0) + 0.02

    def test_geo_homophily_off_spreads_edges(self, population):
        from repro.geo.distance import haversine_miles

        def median_friend_miles(geo: bool) -> float:
            generated = generate_graph(
                population,
                GraphGenConfig(geo_homophily=geo, same_city_prob=0.0),
                np.random.default_rng(8),
            )
            lats, lons = population.latitudes, population.longitudes
            miles = haversine_miles(
                lats[generated.sources], lons[generated.sources],
                lats[generated.targets], lons[generated.targets],
            )
            return float(np.median(miles))

        assert median_friend_miles(True) < median_friend_miles(False)


class TestSampleOutDegrees:
    def test_whitelisted_may_exceed_cap_others_never(self, population):
        from repro.synth.graphgen import _sample_out_degrees

        config = GraphGenConfig(out_degree_cap=3)
        wishes = _sample_out_degrees(
            population, config, np.random.default_rng(11)
        )
        whitelisted = np.zeros(N, dtype=bool)
        whitelisted[list(population.celebrity_spec)] = True
        assert int(wishes[~whitelisted].max()) <= config.out_degree_cap
        # The whitelist escapes the cap (up to 2x), and with a cap this
        # low some celebrity draw actually lands above it.
        assert int(wishes[whitelisted].max()) > config.out_degree_cap
        assert int(wishes[whitelisted].max()) <= 2 * config.out_degree_cap
        assert int(wishes.min()) >= 1
        assert int(wishes.max()) <= N - 1
