"""Tests for the country database and share allocation."""

import pytest

from repro.synth.countries import (
    build_country_table,
    MAJOR_COUNTRIES,
    MINOR_COUNTRIES,
    TOP10_CODES,
)


@pytest.fixture(scope="module")
def table():
    return build_country_table()


class TestTableIntegrity:
    def test_all_countries_present(self, table):
        assert len(table) == len(MAJOR_COUNTRIES) + len(MINOR_COUNTRIES)

    def test_top10_codes_match_paper_order(self):
        assert TOP10_CODES == ("US", "IN", "BR", "GB", "CA", "DE", "ID", "MX", "IT", "ES")

    def test_top10_all_major(self, table):
        major_codes = {c.code for c in MAJOR_COUNTRIES}
        assert set(TOP10_CODES) <= major_codes

    def test_shares_normalisable(self, table):
        total = sum(c.gplus_share for c in table.values())
        assert 0.9 < total <= 1.0001

    def test_us_is_largest(self, table):
        assert max(table.values(), key=lambda c: c.gplus_share).code == "US"

    def test_top10_order_by_share(self, table):
        shares = [table[code].gplus_share for code in TOP10_CODES]
        assert shares == sorted(shares, reverse=True)

    def test_minor_shares_capped_below_top10(self, table):
        smallest_top10 = min(table[code].gplus_share for code in TOP10_CODES)
        for country in MINOR_COUNTRIES:
            assert table[country.code].gplus_share < smallest_top10


class TestFacts:
    def test_probabilities_in_range(self, table):
        for country in table.values():
            assert 0.0 < country.internet_penetration <= 1.0
            assert country.population_m > 0
            assert country.gdp_per_capita_ppp > 0
            assert 0.0 <= country.domesticity <= 1.0
            assert 0.0 <= country.us_flux <= 1.0
            assert country.domesticity + country.us_flux <= 1.0

    def test_internet_population(self, table):
        us = table["US"]
        assert us.internet_population_m == pytest.approx(
            us.population_m * us.internet_penetration
        )

    def test_us_has_no_us_flux(self, table):
        assert table["US"].us_flux == 0.0

    def test_india_gpr_beats_us_in_ground_truth(self, table):
        """Figure 7a's headline requires IN located-share / netizens > US."""
        total = sum(c.gplus_share for c in table.values())
        gpr = {
            code: table[code].gplus_share / total / table[code].internet_population_m
            for code in ("IN", "US")
        }
        assert gpr["IN"] > gpr["US"]

    def test_openness_ordering_endpoints(self, table):
        """Figure 8: Indonesia/Mexico most open, Germany most conservative."""
        top10_openness = {code: table[code].openness for code in TOP10_CODES}
        ranked = sorted(top10_openness, key=top10_openness.get, reverse=True)
        assert set(ranked[:2]) == {"ID", "MX"}
        assert ranked[-1] == "DE"

    def test_tel_affinity_ordering(self, table):
        """Table 3: India overshares phone numbers, US undershares."""
        assert table["IN"].tel_affinity > 1.5
        assert table["US"].tel_affinity < 0.5

    def test_anglophone_flags(self, table):
        for code in ("US", "GB", "CA", "AU", "IN"):
            assert table[code].english_speaking
        for code in ("BR", "DE", "MX", "IT", "ES"):
            assert not table[code].english_speaking

    def test_inward_vs_outward_domesticity(self, table):
        """Figure 10: US/IN/BR/ID inward, GB/CA outward."""
        for code in ("US", "IN", "BR", "ID"):
            assert table[code].domesticity > 0.6
        for code in ("GB", "CA"):
            assert table[code].domesticity < 0.4
            assert table[code].us_flux > 0.3
