"""Tests for celebrity seeding."""

import pytest

from repro.platform.models import Occupation
from repro.synth.celebrities import (
    attachment_weight,
    GLOBAL_CELEBRITIES,
    national_celebrities,
)


class TestGlobalCelebrities:
    def test_twenty_entries_in_rank_order(self):
        assert len(GLOBAL_CELEBRITIES) == 20
        assert [c.global_rank for c in GLOBAL_CELEBRITIES] == list(range(1, 21))

    def test_table1_headliners(self):
        names = [c.name for c in GLOBAL_CELEBRITIES]
        assert names[0] == "Larry Page"
        assert names[1] == "Mark Zuckerberg"
        assert names[2] == "Britney Spears"
        assert "Ron Garan" in names

    def test_seven_it_celebrities(self):
        """The paper's signature: 7 of the top 20 are IT-related."""
        it_count = sum(
            1 for c in GLOBAL_CELEBRITIES if c.occupation is Occupation.IT
        )
        assert it_count == 7

    def test_richard_branson_is_british(self):
        branson = next(c for c in GLOBAL_CELEBRITIES if "Branson" in c.name)
        assert branson.country == "GB"


class TestNationalCelebrities:
    def test_hundred_national_celebrities(self):
        assert len(national_celebrities()) == 100  # 10 per top-10 country

    def test_rank_zero_marks_national(self):
        assert all(c.global_rank == 0 for c in national_celebrities())

    def test_table5_occupations_carried(self):
        by_country = {}
        for spec in national_celebrities():
            by_country.setdefault(spec.country, []).append(spec.occupation)
        assert by_country["ES"][1] is Occupation.POLITICIAN


class TestAttachmentWeight:
    def test_global_weights_zipf_decay(self):
        first = attachment_weight(GLOBAL_CELEBRITIES[0], 10_000, 3_000)
        second = attachment_weight(GLOBAL_CELEBRITIES[1], 10_000, 3_000)
        assert first == 2 * second

    def test_scales_with_population(self):
        small = attachment_weight(GLOBAL_CELEBRITIES[0], 1_000, 300)
        large = attachment_weight(GLOBAL_CELEBRITIES[0], 10_000, 3_000)
        assert large == pytest.approx(10 * small)

    def test_national_weight_positive_and_decaying(self):
        spec = national_celebrities()[0]
        w1 = attachment_weight(spec, 10_000, 2_000, national_position=1)
        w5 = attachment_weight(spec, 10_000, 2_000, national_position=5)
        assert w1 > w5 > 0

    def test_national_weight_capped_for_huge_countries(self):
        """India's size must not launch its national celebrities into the
        global Table 1 ranking."""
        spec = national_celebrities()[0]
        huge = attachment_weight(spec, 10_000, 9_000, national_position=1)
        assert huge <= 0.015 * 10_000

    def test_national_floor_for_tiny_countries(self):
        spec = national_celebrities()[0]
        weight = attachment_weight(spec, 10_000, 3, national_position=1)
        assert weight > 0
