"""Tests for the baseline OSN models."""

import numpy as np
import pytest

from repro.graph.clustering import average_clustering
from repro.graph.degree import degree_distributions
from repro.graph.powerlaw import fit_powerlaw_ccdf
from repro.graph.reciprocity import global_reciprocity
from repro.graph.sampling import sample_nodes
from repro.synth.baselines import (
    BASELINE_GENERATORS,
    generate_facebook_like,
    generate_orkut_like,
    generate_twitter_like,
)

N = 2_500


@pytest.fixture(scope="module")
def twitter():
    return generate_twitter_like(N, seed=3)


@pytest.fixture(scope="module")
def facebook():
    return generate_facebook_like(N, seed=3)


@pytest.fixture(scope="module")
def orkut():
    return generate_orkut_like(N, seed=3)


class TestTwitterLike:
    def test_reciprocity_near_kwak(self, twitter):
        """Kwak et al. measured 22.1%."""
        assert global_reciprocity(twitter) == pytest.approx(0.22, abs=0.06)

    def test_power_law_in_degree(self, twitter):
        dist = degree_distributions(twitter)
        fit = fit_powerlaw_ccdf(dist.in_ccdf)
        assert fit.r_squared > 0.8
        assert dist.in_degrees.max() > 15 * dist.in_degrees.mean()

    def test_media_hubs_have_low_out_degree(self, twitter):
        """The defining Twitter asymmetry: hubs don't follow back."""
        dist = degree_distributions(twitter)
        top = int(np.argmax(dist.in_degrees))
        assert dist.out_degrees[top] < 0.05 * dist.in_degrees[top]


class TestMutualNetworks:
    @pytest.mark.parametrize("fixture", ["facebook", "orkut"])
    def test_fully_reciprocal(self, fixture, request):
        graph = request.getfixturevalue(fixture)
        assert global_reciprocity(graph) == 1.0

    def test_facebook_denser_than_orkut_model(self, facebook, orkut):
        assert facebook.n_edges > orkut.n_edges

    def test_orkut_more_clustered(self, facebook, orkut, rng):
        cc_orkut = average_clustering(orkut, sample_nodes(orkut, 300, rng))
        cc_twitterless = average_clustering(
            facebook, sample_nodes(facebook, 300, rng)
        )
        assert cc_orkut > 0.05
        assert cc_twitterless > 0.05


class TestAllBaselines:
    @pytest.mark.parametrize("name", sorted(BASELINE_GENERATORS))
    def test_no_self_loops(self, name):
        graph = BASELINE_GENERATORS[name](800, seed=1)
        sources = np.repeat(
            np.arange(graph.n, dtype=np.int64), graph.out_degrees()
        )
        assert not (sources == graph.indices).any()

    @pytest.mark.parametrize("name", sorted(BASELINE_GENERATORS))
    def test_deterministic(self, name):
        a = BASELINE_GENERATORS[name](600, seed=5)
        b = BASELINE_GENERATORS[name](600, seed=5)
        assert a.n_edges == b.n_edges
        assert np.array_equal(a.indices, b.indices)

    @pytest.mark.parametrize("name", sorted(BASELINE_GENERATORS))
    def test_everyone_participates(self, name):
        graph = BASELINE_GENERATORS[name](800, seed=2)
        degrees = graph.in_degrees() + graph.out_degrees()
        assert (degrees > 0).mean() > 0.99
