"""Tests for the city gazetteer and sampler."""

import numpy as np
import pytest

from repro.geo.distance import haversine_miles
from repro.synth.cities import build_gazetteer, CitySampler
from repro.synth.countries import build_country_table


@pytest.fixture(scope="module")
def gazetteer():
    return build_gazetteer()


class TestGazetteer:
    def test_every_country_has_cities(self, gazetteer):
        for code in build_country_table():
            assert code in gazetteer
            assert len(gazetteer[code]) >= 2

    def test_city_country_labels_consistent(self, gazetteer):
        for code, cities in gazetteer.items():
            for city in cities:
                assert city.country == code
                assert -90 <= city.latitude <= 90
                assert -180 <= city.longitude <= 180
                assert city.weight > 0

    def test_known_coordinates_plausible(self, gazetteer):
        by_name = {c.name: c for cities in gazetteer.values() for c in cities}
        ny, la = by_name["New York"], by_name["Los Angeles"]
        miles = haversine_miles(ny.latitude, ny.longitude, la.latitude, la.longitude)
        assert 2300 < float(miles) < 2600

    def test_city_names_unique_within_country(self, gazetteer):
        for cities in gazetteer.values():
            names = [c.name for c in cities]
            assert len(names) == len(set(names))


class TestSampler:
    def test_sample_index_in_range(self, rng):
        sampler = CitySampler()
        for _ in range(50):
            index = sampler.sample_city_index("US", rng)
            assert 0 <= index < len(sampler.cities_of("US"))

    def test_population_weighting(self):
        sampler = CitySampler()
        rng = np.random.default_rng(0)
        counts = np.zeros(len(sampler.cities_of("GB")))
        for _ in range(3000):
            counts[sampler.sample_city_index("GB", rng)] += 1
        # London dominates the UK gazetteer by weight.
        london = [c.name for c in sampler.cities_of("GB")].index("London")
        assert counts.argmax() == london

    def test_jitter_keeps_coordinates_near_city(self, rng):
        sampler = CitySampler(jitter_deg=0.04)
        city = sampler.cities_of("DE")[0]
        lat, lon = sampler.coordinates_for("DE", 0, rng)
        miles = float(haversine_miles(lat, lon, city.latitude, city.longitude))
        assert miles < 40

    def test_same_city_pairs_within_ten_miles_mostly(self):
        sampler = CitySampler()
        rng = np.random.default_rng(1)
        coords = [sampler.coordinates_for("FR", 0, rng) for _ in range(200)]
        lats = np.array([c[0] for c in coords])
        lons = np.array([c[1] for c in coords])
        distances = haversine_miles(lats[:100], lons[:100], lats[100:], lons[100:])
        assert (distances < 10).mean() > 0.6

    def test_coordinates_stay_valid(self, rng):
        sampler = CitySampler(jitter_deg=0.5)
        for code in ("US", "ID", "SE"):
            for city_index in range(len(sampler.cities_of(code))):
                lat, lon = sampler.coordinates_for(code, city_index, rng)
                assert -90 <= lat <= 90
                assert -180 <= lon <= 180
