"""Differential proofs: the columnar store builds the same world.

``WorldConfig(store="columnar")`` must be invisible to every consumer:
same graph arrays from the same seed, byte-identical profile pages,
and a crawl over the columnar world must emit edge arrays bit-identical
to the dict-backed reference. The CI ``million-user`` job runs the same
proof at 20k users; this tier-1 copy keeps the contract enforced on
every push at a scale that fits the suite budget.
"""

import numpy as np
import pytest

from repro.crawler.bfs import BidirectionalBFSCrawler, CrawlConfig
from repro.platform.columnar import ColumnarGooglePlusService, ProfilesView
from repro.serve.cache import page_to_bytes
from repro.synth import build_world, WorldConfig


def _config(store: str, engine: str = "fast") -> WorldConfig:
    return WorldConfig(n_users=1_500, seed=11, engine=engine, store=store)


@pytest.fixture(scope="module")
def worlds():
    return build_world(_config("dict")), build_world(_config("columnar"))


class TestColumnarWorldEquivalence:
    def test_backend_selected(self, worlds):
        dict_world, col_world = worlds
        assert dict_world.service.backend == "dict"
        assert col_world.service.backend == "columnar"
        assert isinstance(col_world.service, ColumnarGooglePlusService)
        assert isinstance(col_world.profiles, ProfilesView)

    def test_graph_arrays_identical(self, worlds):
        dict_world, col_world = worlds
        assert np.array_equal(dict_world.graph.sources, col_world.graph.sources)
        assert np.array_equal(dict_world.graph.targets, col_world.graph.targets)
        assert dict_world.seed_user_id() == col_world.seed_user_id()

    def test_sampled_pages_byte_identical(self, worlds):
        dict_world, col_world = worlds
        users = sorted(dict_world.service.user_ids())
        owners = users[::173] + [dict_world.seed_user_id()]
        viewers = [None, 0] + users[::311]
        for owner in owners:
            for viewer in viewers:
                ref = page_to_bytes(dict_world.service.profile_page(owner, viewer))
                col = page_to_bytes(col_world.service.profile_page(owner, viewer))
                assert ref == col, (owner, viewer)

    def test_degrees_and_followers_identical(self, worlds):
        dict_world, col_world = worlds
        for uid in sorted(dict_world.service.user_ids())[::97]:
            assert dict_world.service.followees(uid) == col_world.service.followees(
                uid
            )
            assert dict_world.service.followers(uid) == col_world.service.followers(
                uid
            )

    def test_crawl_edge_arrays_bit_identical(self, worlds):
        dict_world, col_world = worlds
        datasets = []
        for world in (dict_world, col_world):
            crawler = BidirectionalBFSCrawler(
                world.frontend(rate_per_ip=1e9, burst=1e9),
                CrawlConfig(n_machines=3, max_pages=400, request_latency=0.0),
            )
            datasets.append(crawler.crawl([world.seed_user_id()]))
        ref, col = datasets
        assert np.array_equal(ref.sources, col.sources)
        assert np.array_equal(ref.targets, col.targets)
        assert ref.stats == col.stats


class TestReferenceEngineColumnar:
    def test_reference_profiles_convert(self):
        dict_world = build_world(_config("dict", engine="reference"))
        col_world = build_world(_config("columnar", engine="reference"))
        assert np.array_equal(dict_world.graph.sources, col_world.graph.sources)
        for uid in (0, 7, 500, 1499):
            ref = page_to_bytes(dict_world.service.profile_page(uid, None))
            col = page_to_bytes(col_world.service.profile_page(uid, None))
            assert ref == col, uid
