"""Tests for the temporal growth model."""

import numpy as np
import pytest

from repro.synth.growth import (
    assign_join_days,
    build_timeline,
    CRAWL_DAY,
    GrowthConfig,
    GrowthTimeline,
    OPEN_SIGNUP_DAY,
)


@pytest.fixture(scope="module")
def timeline(small_world) -> GrowthTimeline:
    return build_timeline(
        small_world.graph, small_world.config.field_trial_fraction, seed=17
    )


class TestJoinDays:
    def test_all_within_crawl_window(self, timeline):
        assert timeline.join_days.min() >= 0.0
        assert timeline.join_days.max() <= CRAWL_DAY

    def test_field_trial_users_join_before_open_signup(self, small_world, timeline):
        n_trial = int(
            round(small_world.config.field_trial_fraction * small_world.n_users)
        )
        assert (timeline.join_days[:n_trial] <= OPEN_SIGNUP_DAY + 1e-9).all()

    def test_open_signup_users_join_after(self, small_world, timeline):
        n_trial = int(
            round(small_world.config.field_trial_fraction * small_world.n_users)
        )
        assert (timeline.join_days[n_trial:] >= OPEN_SIGNUP_DAY).all()

    def test_viral_ramp_accelerates(self):
        rng = np.random.default_rng(0)
        days = assign_join_days(10_000, 1.0, rng)
        # Exponential viral growth: more of the field trial joins in the
        # last 30 days than in the first 60.
        late = (days > OPEN_SIGNUP_DAY - 30).sum()
        early = (days <= 30).sum()
        assert late > 3 * early

    def test_no_mass_pileup_at_crawl_day(self):
        rng = np.random.default_rng(0)
        days = assign_join_days(20_000, 0.3, rng)
        assert (days > CRAWL_DAY - 1).mean() < 0.05


class TestEdgeDays:
    def test_edges_after_both_endpoints(self, small_world, timeline):
        graph = small_world.graph
        both = np.maximum(
            timeline.join_days[graph.sources], timeline.join_days[graph.targets]
        )
        assert (timeline.edge_days >= both - 1e-9).all()

    def test_edges_within_window(self, timeline):
        assert timeline.edge_days.max() <= CRAWL_DAY

    def test_deterministic(self, small_world):
        a = build_timeline(small_world.graph, 0.3, seed=4)
        b = build_timeline(small_world.graph, 0.3, seed=4)
        assert np.array_equal(a.join_days, b.join_days)
        assert np.array_equal(a.edge_days, b.edge_days)


class TestSnapshots:
    def test_monotone_growth(self, timeline):
        previous_nodes = previous_edges = -1
        for day in (30, 60, 90, 120, 180):
            nodes, sources, _ = timeline.snapshot(day)
            assert len(nodes) >= previous_nodes
            assert len(sources) >= previous_edges
            previous_nodes, previous_edges = len(nodes), len(sources)

    def test_final_snapshot_is_whole_world(self, small_world, timeline):
        nodes, sources, targets = timeline.snapshot(CRAWL_DAY)
        assert len(nodes) == small_world.n_users
        assert len(sources) == small_world.graph.n_edges

    def test_snapshot_edges_among_joined_nodes(self, timeline):
        nodes, sources, targets = timeline.snapshot(100.0)
        joined = set(nodes.tolist())
        assert set(sources.tolist()) <= joined
        assert set(targets.tolist()) <= joined

    def test_adoption_curve_monotone(self, timeline):
        days = np.linspace(0, CRAWL_DAY, 50)
        curve = timeline.adoption_curve(days)
        assert (np.diff(curve) >= 0).all()
        assert curve[-1] == len(timeline.join_days)

    def test_validation(self, small_world):
        with pytest.raises(ValueError):
            GrowthTimeline(
                graph=small_world.graph,
                join_days=np.zeros(3),
                edge_days=np.zeros(small_world.graph.n_edges),
            )


class TestConfig:
    def test_config_shapes_spike(self):
        rng = np.random.default_rng(1)
        spiky = GrowthConfig(open_spike_fraction=0.9, open_spike_days=5.0)
        days = assign_join_days(10_000, 0.2, rng, spiky)
        opened = days[days >= OPEN_SIGNUP_DAY]
        within_spike = (opened <= OPEN_SIGNUP_DAY + 10).mean()
        assert within_spike > 0.5
