"""Tests for population and profile generation."""

import numpy as np
import pytest

from repro.platform.models import ContactInfo, Gender
from repro.synth.config import WorldConfig
from repro.synth.profiles import build_profiles, generate_population

N = 3_000


@pytest.fixture(scope="module")
def config() -> WorldConfig:
    return WorldConfig(n_users=N, seed=21)


@pytest.fixture(scope="module")
def population(config):
    return generate_population(config, np.random.default_rng(config.seed))


@pytest.fixture(scope="module")
def profiles(config, population):
    return build_profiles(population, config, np.random.default_rng(99))


class TestPopulation:
    def test_arrays_sized(self, population):
        assert population.n == N
        assert len(population.country_codes) == N
        assert len(population.genders) == N
        assert len(population.disclosure) == N

    def test_countries_from_table(self, population):
        assert set(population.country_codes) <= set(population.countries)

    def test_us_is_plurality(self, population):
        from collections import Counter

        counts = Counter(population.country_codes)
        assert counts.most_common(1)[0][0] == "US"

    def test_celebrities_seated_in_their_countries(self, population):
        for user_id, spec in population.celebrity_spec.items():
            assert population.country_codes[user_id] == spec.country

    def test_celebrity_count(self, population):
        assert len(population.celebrity_spec) == 120  # 20 global + 100 national

    def test_celebrity_weights_positive(self, population):
        for user_id in population.celebrity_spec:
            assert population.celebrity_weight[user_id] > 0

    def test_celebrity_followback_suppressed(self, population):
        for user_id in population.celebrity_spec:
            assert population.followback[user_id] <= 0.05

    def test_tel_user_count_exact(self, population, config):
        assert population.tel_users.sum() == round(config.tel_user_rate * N)

    def test_celebrities_never_tel_users(self, population):
        for user_id in population.celebrity_spec:
            assert not population.tel_users[user_id]

    def test_too_small_world_rejected(self):
        with pytest.raises(ValueError):
            WorldConfig(n_users=100, seed=1)

    def test_deterministic(self, config):
        a = generate_population(config, np.random.default_rng(config.seed))
        b = generate_population(config, np.random.default_rng(config.seed))
        assert a.country_codes == b.country_codes
        assert np.array_equal(a.tel_users, b.tel_users)
        assert np.array_equal(a.latitudes, b.latitudes)


class TestProfiles:
    def test_one_profile_per_user(self, profiles):
        assert len(profiles) == N

    def test_celebrity_names_used(self, population, profiles):
        for user_id, spec in population.celebrity_spec.items():
            assert profiles[user_id].name == spec.name

    def test_celebrities_expose_occupation_and_places(self, population, profiles):
        for user_id in population.celebrity_spec:
            assert profiles[user_id].get_public("occupation") is not None
            assert profiles[user_id].get_public("places_lived") is not None

    def test_tel_users_have_public_phone(self, population, profiles):
        for user_id in np.flatnonzero(population.tel_users):
            assert profiles[int(user_id)].shares_phone_publicly()

    def test_non_tel_users_have_no_public_phone(self, population, profiles):
        non_tel = [
            uid for uid in range(N) if not population.tel_users[uid]
        ]
        assert not any(
            profiles[uid].shares_phone_publicly() for uid in non_tel
        )

    def test_gender_availability_near_table2(self, profiles):
        shared = sum(
            1 for p in profiles.values() if p.get_public("gender") is not None
        )
        assert shared / len(profiles) == pytest.approx(0.9767, abs=0.02)

    def test_places_availability_near_table2(self, profiles):
        # Celebrities always share places; at N=3000 the 120 of them add
        # ~3 points over the Table 2 baseline, hence the wide tolerance.
        shared = sum(
            1 for p in profiles.values() if p.get_public("places_lived") is not None
        )
        assert shared / len(profiles) == pytest.approx(0.2675, abs=0.06)

    def test_education_availability_near_table2(self, profiles):
        shared = sum(
            1 for p in profiles.values() if p.get_public("education") is not None
        )
        assert shared / len(profiles) == pytest.approx(0.2711, abs=0.05)

    def test_last_place_is_home_city(self, population, profiles):
        for user_id in range(0, N, 97):
            places = profiles[user_id].get_public("places_lived")
            if places is None:
                continue
            assert places[-1].country == population.country_codes[user_id]
            assert places[-1].latitude == pytest.approx(
                population.latitudes[user_id]
            )

    def test_contact_blocks_are_contactinfo(self, population, profiles):
        for user_id in np.flatnonzero(population.tel_users):
            profile = profiles[int(user_id)]
            value = profile.get_public("work_contact") or profile.get_public(
                "home_contact"
            )
            assert isinstance(value, ContactInfo)

    def test_gender_values_valid(self, profiles):
        for user_id in range(0, N, 53):
            gender = profiles[user_id].get_public("gender")
            if gender is not None:
                assert isinstance(gender, Gender)
