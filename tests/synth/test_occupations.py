"""Tests for occupation models and the Jaccard index."""

import numpy as np
import pytest

from repro.platform.models import Occupation
from repro.synth.occupations import (
    CELEBRITY_OCCUPATIONS,
    jaccard_index,
    OccupationSampler,
    ORDINARY_OCCUPATIONS,
)


class TestTable5Sequences:
    def test_all_top10_countries_present(self):
        assert set(CELEBRITY_OCCUPATIONS) == {
            "US", "IN", "BR", "GB", "CA", "DE", "ID", "MX", "IT", "ES",
        }

    def test_ten_entries_each(self):
        for sequence in CELEBRITY_OCCUPATIONS.values():
            assert len(sequence) == 10

    def test_us_row_verbatim(self):
        codes = [o.value for o in CELEBRITY_OCCUPATIONS["US"]]
        assert codes == ["Co", "Mu", "IT", "Mu", "IT", "Mu", "Bu", "IT", "Mo", "Ac"]

    def test_es_has_politicians_brazil_does_not(self):
        assert Occupation.POLITICIAN in CELEBRITY_OCCUPATIONS["ES"]
        assert Occupation.POLITICIAN not in CELEBRITY_OCCUPATIONS["BR"]
        assert Occupation.IT not in CELEBRITY_OCCUPATIONS["BR"]

    def test_italy_has_four_journalists(self):
        count = sum(
            1 for o in CELEBRITY_OCCUPATIONS["IT"] if o is Occupation.JOURNALIST
        )
        assert count == 4

    def test_paper_jaccard_values_recoverable(self):
        """The Jaccard column of Table 5 follows from the sequences."""
        us = set(CELEBRITY_OCCUPATIONS["US"])
        assert jaccard_index(set(CELEBRITY_OCCUPATIONS["CA"]), us) == pytest.approx(0.83, abs=0.01)
        assert jaccard_index(set(CELEBRITY_OCCUPATIONS["IN"]), us) == pytest.approx(0.57, abs=0.01)
        assert jaccard_index(set(CELEBRITY_OCCUPATIONS["BR"]), us) == pytest.approx(0.18, abs=0.01)
        assert jaccard_index(us, us) == 1.0


class TestJaccard:
    def test_disjoint(self):
        assert jaccard_index({1, 2}, {3}) == 0.0

    def test_identical(self):
        assert jaccard_index({1, 2}, {1, 2}) == 1.0

    def test_partial(self):
        assert jaccard_index({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)

    def test_both_empty(self):
        assert jaccard_index(set(), set()) == 1.0

    def test_one_empty(self):
        assert jaccard_index(set(), {1}) == 0.0


class TestOrdinarySampler:
    def test_mix_sums_to_one(self):
        assert sum(ORDINARY_OCCUPATIONS.values()) == pytest.approx(1.0, abs=0.01)

    def test_sampled_frequencies(self):
        sampler = OccupationSampler(np.random.default_rng(0))
        sample = sampler.sample(20_000)
        student_share = sum(1 for o in sample if o is Occupation.STUDENT) / len(sample)
        assert student_share == pytest.approx(
            ORDINARY_OCCUPATIONS[Occupation.STUDENT], abs=0.02
        )
