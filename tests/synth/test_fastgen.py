"""Tests for the vectorized world-generation engine (fastgen).

Covers edge validity, bit-stable determinism (in-process and across
processes), metric emission, the vectorized duplicate-edge filter, and
hypothesis property tests for the incremental cumulative-weight sampler.
"""

import hashlib
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import Registry, get_registry, set_registry
from repro.synth.config import GraphGenConfig, WorldConfig
from repro.synth.fastgen import IncrementalPools, _KeySet, generate_graph_fast
from repro.synth.profiles import generate_population

N = 2_000

_HASH_SNIPPET = """\
import hashlib
import numpy as np
from repro.synth.config import GraphGenConfig, WorldConfig
from repro.synth.fastgen import generate_graph_fast
from repro.synth.profiles import generate_population

config = WorldConfig(n_users={n}, seed=5)
population = generate_population(config, np.random.default_rng(config.seed))
graph = generate_graph_fast(
    population, GraphGenConfig(), np.random.default_rng(17)
)
digest = hashlib.sha256()
digest.update(np.ascontiguousarray(graph.sources).tobytes())
digest.update(np.ascontiguousarray(graph.targets).tobytes())
print(digest.hexdigest())
"""


def _edge_digest(graph) -> str:
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(graph.sources).tobytes())
    digest.update(np.ascontiguousarray(graph.targets).tobytes())
    return digest.hexdigest()


@pytest.fixture(scope="module")
def population():
    config = WorldConfig(n_users=N, seed=5)
    return generate_population(config, np.random.default_rng(config.seed))


@pytest.fixture(scope="module")
def generated(population):
    return generate_graph_fast(
        population, GraphGenConfig(), np.random.default_rng(17)
    )


class TestEdgeValidity:
    def test_no_self_loops(self, generated):
        assert not (generated.sources == generated.targets).any()

    def test_no_duplicate_edges(self, generated):
        pairs = set(zip(generated.sources.tolist(), generated.targets.tolist()))
        assert len(pairs) == generated.n_edges

    def test_ids_in_range(self, generated):
        assert generated.sources.min() >= 0
        assert generated.targets.max() < N

    def test_edges_grouped_by_source(self, generated):
        # The fast engine emits edges sorted by source (stable), so bulk
        # service ingest gets nearly-free owner grouping.
        assert (np.diff(generated.sources) >= 0).all()

    def test_most_users_touched(self, generated):
        touched = set(generated.sources.tolist()) | set(generated.targets.tolist())
        assert len(touched) > 0.99 * N


class TestDeterminism:
    def test_same_seed_bit_identical(self, population, generated):
        again = generate_graph_fast(
            population, GraphGenConfig(), np.random.default_rng(17)
        )
        assert np.array_equal(generated.sources, again.sources)
        assert np.array_equal(generated.targets, again.targets)

    def test_bit_identical_across_processes(self, generated):
        """Same seed ⇒ the same edge arrays in a fresh interpreter.

        Guards against salted ``hash()``, wall-clock input, or any other
        per-process state leaking into the generator.
        """
        snippet = _HASH_SNIPPET.format(n=N)
        import repro

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_dir, env.get("PYTHONPATH")) if p
        )
        out = subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        )
        assert out.stdout.strip() == _edge_digest(generated)


class TestMetrics:
    def test_generation_emits_synth_metrics(self, population):
        previous = get_registry()
        registry = set_registry(Registry(enabled=True))
        try:
            generate_graph_fast(
                population, GraphGenConfig(), np.random.default_rng(17)
            )
        finally:
            set_registry(previous)
        assert registry.get("synth.gen_rounds").value() > 0
        assert registry.get("synth.gen_round_batches").value() > 0
        assert registry.get("synth.gen_stubs").value() > 0
        edges = registry.get("synth.gen_edges")
        assert edges.value(kind="forward") > 0
        assert edges.value(kind="followback") > 0
        rebuilds = registry.get("synth.pool_rebuilds")
        assert rebuilds.value(layer="country") > 0
        assert registry.get("synth.gen_edges_per_round").value() > 0
        assert registry.get("synth.gen_retry_fraction").value() >= 0


class TestKeySet:
    def test_matches_python_set_semantics(self):
        rng = np.random.default_rng(0)
        keyset = _KeySet(expected=8)  # tiny: forces repeated table growth
        reference: set[int] = set()
        for _ in range(60):
            keys = rng.integers(0, 20_000, size=int(rng.integers(1, 800)))
            got = keyset.contains(keys)
            want = np.fromiter(
                (int(k) in reference for k in keys), bool, count=len(keys)
            )
            assert (got == want).all()
            fresh = np.unique(keys)
            fresh = fresh[~keyset.contains(fresh)]
            keyset.add(fresh)
            reference.update(fresh.tolist())
        sweep = np.arange(0, 25_000, dtype=np.int64)
        got = keyset.contains(sweep)
        want = np.fromiter(
            (int(k) in reference for k in sweep), bool, count=len(sweep)
        )
        assert (got == want).all()

    def test_empty_queries(self):
        keyset = _KeySet()
        empty = np.empty(0, dtype=np.int64)
        assert keyset.contains(empty).shape == (0,)
        keyset.add(empty)  # no-op


# ---------------------------------------------------------------------------
# IncrementalPools property tests
# ---------------------------------------------------------------------------

weights_strategy = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=40,
)


@st.composite
def pool_and_bumps(draw):
    """A (group_ids, weights, bump member sequence) triple."""
    n = draw(st.integers(min_value=1, max_value=40))
    group_ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=4), min_size=n, max_size=n
        )
    )
    weights = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    bumps = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), max_size=60)
    )
    return group_ids, weights, bumps


class TestIncrementalPoolsProperties:
    @given(pool_and_bumps())
    @settings(max_examples=60, deadline=None)
    def test_weights_stay_non_negative(self, data):
        group_ids, weights, bumps = data
        pools = IncrementalPools(np.array(group_ids), np.array(weights))
        for member in bumps:
            pools.add_weight(member, 1.0)
        for member in range(len(weights)):
            assert pools.weight_of(member) >= 0.0

    @given(pool_and_bumps())
    @settings(max_examples=60, deadline=None)
    def test_updates_match_from_scratch_rebuild(self, data):
        """Incremental bumps leave the same state as rebuilding from the
        final weights."""
        group_ids, weights, bumps = data
        pools = IncrementalPools(np.array(group_ids), np.array(weights))
        final = np.array(weights, dtype=np.float64)
        if bumps:
            pools.add_weights(np.array(bumps), 1.0)
            np.add.at(final, np.array(bumps), 1.0)
        rebuilt = IncrementalPools(np.array(group_ids), final)
        for group in range(pools.n_groups):
            np.testing.assert_allclose(
                pools.group_weights(group), rebuilt.group_weights(group)
            )
            if pools.group_size(group):
                np.testing.assert_allclose(
                    pools.cumulative(group), rebuilt.cumulative(group)
                )

    @given(weights_strategy)
    @settings(max_examples=25, deadline=None)
    def test_pick_frequencies_converge_to_weights(self, weights):
        """Empirical pick frequencies approach the normalized weights."""
        weights = np.array(weights, dtype=np.float64)
        total = weights.sum()
        if total <= 0:
            return  # nothing samplable; pick() raises, covered below
        pools = IncrementalPools(np.zeros(len(weights), dtype=np.int64), weights)
        rng = np.random.default_rng(7)
        picks = pools.pick(0, rng.random(20_000))
        freq = np.bincount(picks, minlength=len(weights)) / 20_000
        np.testing.assert_allclose(freq, weights / total, atol=0.02)

    def test_negative_update_rejected(self):
        pools = IncrementalPools(np.zeros(3, dtype=np.int64), np.ones(3))
        with pytest.raises(ValueError):
            pools.add_weight(1, -2.0)
        with pytest.raises(ValueError):
            pools.add_weights(np.array([0, 0]), -0.6)
        # Failed batch update must roll back cleanly.
        assert pools.weight_of(0) == pytest.approx(1.0)

    def test_empty_group_is_unsamplable(self):
        pools = IncrementalPools(np.array([0, 2]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            pools.pick(1, np.array([0.5]))

    def test_zero_total_weight_rejected(self):
        pools = IncrementalPools(np.array([0, 0]), np.array([0.0, 0.0]))
        with pytest.raises(ValueError):
            pools.pick(0, np.array([0.5]))
