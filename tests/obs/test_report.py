"""Tests for run reports, including the end-to-end study report."""

import json

import pytest

from repro.obs import (
    RUN_REPORT_FILENAME,
    RUN_REPORT_SCHEMA_VERSION,
    Registry,
    RunReport,
    Tracer,
    build_report,
    validate_run_report,
)
from repro.obs import metrics as metrics_mod
from repro.obs import trace as trace_mod


class TestRunReport:
    def test_write_and_load_round_trip(self, tmp_path):
        report = RunReport(
            kind="study",
            config={"n_users": 10},
            phases=[
                {
                    "name": "crawl",
                    "path": "crawl",
                    "count": 1,
                    "wall_seconds": 0.5,
                    "virtual_seconds": 12.0,
                }
            ],
            metrics={"enabled": True, "metrics": []},
            coverage={"pages_fetched": 10},
        )
        path = report.write(tmp_path / "sub" / "run_report.json")
        loaded = RunReport.load(path)
        assert loaded.config == {"n_users": 10}
        assert loaded.phases[0]["virtual_seconds"] == 12.0
        assert loaded.schema_version == RUN_REPORT_SCHEMA_VERSION

    def test_validate_accepts_written_report(self, tmp_path):
        path = RunReport().write(tmp_path / "r.json")
        assert validate_run_report(json.loads(path.read_text())) == []

    def test_validate_flags_missing_keys(self):
        problems = validate_run_report({"kind": "study"})
        assert any("schema_version" in p for p in problems)
        assert any("phases" in p for p in problems)

    def test_validate_flags_bad_phase(self):
        data = RunReport(phases=[{"name": "x"}]).to_json_dict()
        problems = validate_run_report(data)
        assert any("phases[0]" in p for p in problems)

    def test_validate_flags_newer_schema(self):
        data = RunReport().to_json_dict()
        data["schema_version"] = RUN_REPORT_SCHEMA_VERSION + 1
        assert any("newer" in p for p in validate_run_report(data))

    def test_validate_rejects_non_mapping(self):
        assert validate_run_report([1, 2]) != []

    def test_build_report_pulls_registry_and_tracer(self):
        registry = Registry(enabled=True)
        tracer = Tracer(registry=registry)
        registry.counter("c").inc(4)
        with tracer.span("phase1"):
            pass
        report = build_report(
            kind="bench",
            config={"k": 1},
            coverage={"pages": 2},
            registry=registry,
            tracer=tracer,
        )
        assert report.kind == "bench"
        assert report.phases[0]["name"] == "phase1"
        assert report.metrics["metrics"][0]["samples"][0]["value"] == 4.0
        assert validate_run_report(report.to_json_dict()) == []


class TestAtomicWrite:
    def test_no_temp_file_left_behind(self, tmp_path):
        path = RunReport().write(tmp_path / "r.json")
        assert [p.name for p in tmp_path.iterdir()] == [path.name]

    def test_rewrite_replaces_content(self, tmp_path):
        target = tmp_path / "r.json"
        RunReport(kind="a").write(target)
        RunReport(kind="b").write(target)
        assert json.loads(target.read_text())["kind"] == "b"

    def test_concurrent_reader_never_sees_partial_report(self, tmp_path):
        # A dashboard polling the report while the telemetry rewrites it
        # must always read either the old or the new document, never a
        # truncated or interleaved one — that is the os.replace contract.
        import threading

        target = tmp_path / "r.json"
        RunReport(kind="seed", config={"i": -1}).write(target)
        stop = threading.Event()
        failures: list[str] = []

        def reader():
            while not stop.is_set():
                try:
                    data = json.loads(target.read_text(encoding="utf-8"))
                except (OSError, ValueError) as exc:  # pragma: no cover
                    failures.append(f"partial read: {exc}")
                    return
                if validate_run_report(data):  # pragma: no cover
                    failures.append(f"invalid document: {data}")
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for i in range(200):
                RunReport(
                    kind="live_crawl", config={"i": i}, extra={"pad": "x" * 2000}
                ).write(target)
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert failures == []
        assert json.loads(target.read_text())["config"]["i"] == 199


@pytest.fixture(scope="module")
def study_report_path(tmp_path_factory):
    """Run a small full study through the CLI runner with --report."""
    from repro.experiments.runner import main

    # Isolate the global registry/tracer so the report reflects only
    # this run, then restore the shared state for the rest of the suite.
    old_registry = metrics_mod.get_registry()
    old_tracer = trace_mod.get_tracer()
    metrics_mod.set_registry(Registry(enabled=True))
    trace_mod.set_tracer(Tracer(registry=metrics_mod.get_registry()))
    out_dir = tmp_path_factory.mktemp("report_run")
    try:
        code = main(
            ["--users", "1200", "--seed", "3", "--save", str(out_dir), "--report",
             "table2"]
        )
        assert code == 0
    finally:
        metrics_mod.set_registry(old_registry)
        trace_mod.set_tracer(old_tracer)
    return out_dir / RUN_REPORT_FILENAME


class TestEndToEndStudyReport:
    def test_report_written_and_schema_valid(self, study_report_path):
        assert study_report_path.exists()
        data = json.loads(study_report_path.read_text())
        assert validate_run_report(data) == []
        assert data["kind"] == "study"
        assert data["config"]["n_users"] == 1200

    def test_phases_have_wall_and_virtual_timings(self, study_report_path):
        data = json.loads(study_report_path.read_text())
        by_path = {p["path"]: p for p in data["phases"]}
        crawl = by_path["study.crawl/crawl.bfs"]
        assert crawl["wall_seconds"] > 0.0
        assert crawl["virtual_seconds"] > 0.0
        assert "study.build_world/synth.build_world/synth.graphgen" in by_path
        assert "study.analyze.structure" in by_path

    def test_http_status_counts_present(self, study_report_path):
        data = json.loads(study_report_path.read_text())
        metrics = {m["name"]: m for m in data["metrics"]["metrics"]}
        statuses = {
            s["labels"]["status"]: s["value"]
            for s in metrics["http.requests"]["samples"]
        }
        assert set(statuses) == {"200", "404", "403", "408", "429", "503"}
        assert statuses["200"] > 0
        # No fault schedule armed in a study run: the fault-only status
        # series exist (materialised up front) but never fire.
        assert statuses["403"] == 0
        assert statuses["408"] == 0

    def test_per_machine_fetch_histograms(self, study_report_path):
        data = json.loads(study_report_path.read_text())
        metrics = {m["name"]: m for m in data["metrics"]["metrics"]}
        hist = metrics["crawler.fetch_virtual_seconds"]
        assert hist["kind"] == "histogram"
        machines = {s["labels"]["machine"] for s in hist["samples"]}
        assert len(machines) == 11
        total = sum(s["value"]["count"] for s in hist["samples"])
        assert total == data["coverage"]["pages_fetched"]

    def test_coverage_counts(self, study_report_path):
        data = json.loads(study_report_path.read_text())
        coverage = data["coverage"]
        assert coverage["pages_fetched"] == coverage["profiles"] > 0
        assert coverage["discovered"] >= coverage["pages_fetched"]
        assert coverage["edges"] > 0
        assert coverage["n_machines"] == 11
        assert coverage["virtual_duration"] > 0.0
        lost = coverage["lost_edges"]
        assert set(lost) >= {
            "capped_users",
            "declared_edges",
            "collected_edges",
            "missing_edges",
            "lost_fraction",
            "display_limit",
        }
