"""Tests for the metrics registry: counters, gauges, histograms."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    OBS_ENV_VAR,
    Registry,
    get_registry,
    log_buckets,
    quantile_from_sample,
)


@pytest.fixture
def registry() -> Registry:
    return Registry(enabled=True)


class TestLogBuckets:
    def test_log_spacing(self):
        edges = log_buckets(0.001, 2.0, 5)
        assert edges == (0.001, 0.002, 0.004, 0.008, 0.016)

    def test_default_latency_buckets_cover_ms_to_minutes(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] > 300.0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 2.0, 3)
        with pytest.raises(ValueError):
            log_buckets(1.0, 1.0, 3)
        with pytest.raises(ValueError):
            log_buckets(1.0, 2.0, 0)


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("requests")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labelled_series_independent(self, registry):
        c = registry.counter("requests", labels=("status",))
        c.inc(status=200)
        c.inc(status=200)
        c.inc(status=429)
        assert c.value(status=200) == 2
        assert c.value(status=429) == 1
        assert c.value(status=404) == 0

    def test_label_mismatch_rejected(self, registry):
        c = registry.counter("requests", labels=("status",))
        with pytest.raises(ValueError):
            c.inc()
        with pytest.raises(ValueError):
            c.inc(code=200)

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("requests").inc(-1)

    def test_get_or_create_returns_same_object(self, registry):
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_rejected(self, registry):
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_label_conflict_rejected(self, registry):
        registry.counter("x", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("x", labels=("b",))


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("frontier")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value() == 12


class TestHistogram:
    def test_bucket_edges_le_semantics(self, registry):
        h = registry.histogram("lat", buckets=(1.0, 2.0, 4.0))
        # Values on an edge land in that edge's bucket (le semantics);
        # values past the last edge land in the +inf overflow bucket.
        for v in (0.5, 1.0, 1.5, 2.0, 4.0, 99.0):
            h.observe(v)
        stats = h.series_stats()
        assert stats["count"] == 6
        assert stats["bucket_edges"] == [1.0, 2.0, 4.0, "+inf"]
        assert stats["cumulative_counts"] == [2, 4, 5, 6]
        assert stats["min"] == 0.5
        assert stats["max"] == 99.0
        assert stats["sum"] == pytest.approx(108.0)

    def test_unobserved_series_is_none(self, registry):
        h = registry.histogram("lat")
        assert h.series_stats() is None

    def test_non_increasing_buckets_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=(2.0, 1.0))

    def test_labelled_histogram(self, registry):
        h = registry.histogram("lat", labels=("machine",), buckets=(1.0,))
        h.observe(0.5, machine="10.0.0.1")
        h.observe(3.0, machine="10.0.0.2")
        assert h.series_stats(machine="10.0.0.1")["count"] == 1
        assert h.series_stats(machine="10.0.0.2")["cumulative_counts"] == [0, 1]


class TestHistogramQuantile:
    def test_uniform_distribution_interpolates(self, registry):
        # 1000 evenly spaced values in (0, 10]: the q-quantile of the
        # data is ~10q, and with fine buckets the estimate must land
        # within one bucket width of it.
        h = registry.histogram("lat", buckets=tuple(float(e) for e in range(1, 11)))
        for i in range(1, 1001):
            h.observe(i / 100.0)
        assert h.quantile(0.5) == pytest.approx(5.0, abs=1.0)
        assert h.quantile(0.99) == pytest.approx(9.9, abs=1.0)
        assert h.quantile(0.1) == pytest.approx(1.0, abs=1.0)

    def test_extremes_are_exact_min_max(self, registry):
        h = registry.histogram("lat", buckets=(1.0, 10.0))
        for v in (0.25, 3.0, 7.5):
            h.observe(v)
        assert h.quantile(0.0) == 0.25
        assert h.quantile(1.0) == 7.5

    def test_single_value_series_is_constant(self, registry):
        h = registry.histogram("lat", buckets=(1.0, 2.0, 4.0))
        h.observe(1.5)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 1.5

    def test_overflow_bucket_reports_maximum(self, registry):
        h = registry.histogram("lat", buckets=(1.0,))
        h.observe(0.5)
        h.observe(500.0)  # lands past the last edge
        assert h.quantile(0.99) == 500.0

    def test_unobserved_series_returns_none(self, registry):
        assert registry.histogram("lat").quantile(0.5) is None

    def test_skewed_distribution(self, registry):
        # 99 fast responses and one slow one: p50 stays in the fast
        # bucket, p99 jumps to the slow tail.
        h = registry.histogram("lat", buckets=(0.01, 0.1, 1.0, 10.0))
        for _ in range(99):
            h.observe(0.005)
        h.observe(8.0)
        assert h.quantile(0.5) <= 0.01
        assert h.quantile(0.995) > 1.0

    def test_quantile_from_snapshot_sample(self, registry):
        # The module-level helper works on a sample dict read back from
        # a report, without the Histogram object.
        h = registry.histogram("lat", labels=("machine",), buckets=(1.0, 2.0))
        h.observe(0.5, machine="a")
        h.observe(1.5, machine="a")
        sample = json.loads(json.dumps(h.series_stats(machine="a")))
        assert quantile_from_sample(sample, 0.0) == 0.5
        assert quantile_from_sample(sample, 1.0) == 1.5

    def test_rejects_bad_q(self, registry):
        h = registry.histogram("lat", buckets=(1.0,))
        h.observe(0.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.1)

    def test_empty_sample_rejected(self):
        sample = {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
            "bucket_edges": [1.0, "+inf"], "cumulative_counts": [0, 0],
        }
        with pytest.raises(ValueError):
            quantile_from_sample(sample, 0.5)


class TestSnapshotAndReset:
    def test_snapshot_structure(self, registry):
        registry.counter("c", help="a counter", labels=("k",)).inc(k="v")
        registry.gauge("g").set(7)
        snap = registry.snapshot()
        assert snap["enabled"] is True
        names = [m["name"] for m in snap["metrics"]]
        assert names == ["c", "g"]  # sorted
        counter = snap["metrics"][0]
        assert counter["kind"] == "counter"
        assert counter["help"] == "a counter"
        assert counter["samples"] == [{"labels": {"k": "v"}, "value": 1.0}]

    def test_reset_zeroes_values_keeps_registration(self, registry):
        c = registry.counter("c", labels=("k",))
        c.inc(k="v")
        registry.reset()
        assert c.value(k="v") == 0
        assert registry.counter("c", labels=("k",)) is c
        assert registry.snapshot()["metrics"][0]["samples"] == []

    def test_to_json_round_trips(self, registry):
        registry.counter("c").inc(3)
        data = json.loads(registry.to_json())
        assert data["metrics"][0]["samples"][0]["value"] == 3.0

    def test_render_text(self, registry):
        registry.counter("http.requests", help="reqs", labels=("status",)).inc(
            status=200
        )
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        text = registry.render_text()
        assert "# HELP http.requests reqs" in text
        assert '# TYPE http.requests counter' in text
        assert 'http.requests{status="200"} 1' in text
        assert "lat_count 1" in text
        assert "lat_sum 0.5" in text


class TestDisable:
    def test_disabled_mutators_are_noops(self, registry):
        registry.disable()
        c = registry.counter("c")
        g = registry.gauge("g")
        h = registry.histogram("h")
        c.inc()
        g.set(5)
        h.observe(1.0)
        assert c.value() == 0
        assert g.value() == 0
        assert h.series_stats() is None

    def test_reenable(self, registry):
        registry.disable()
        registry.enable()
        registry.counter("c").inc()
        assert registry.counter("c").value() == 1

    def test_env_var_disables_fresh_registries(self, monkeypatch):
        monkeypatch.setenv(OBS_ENV_VAR, "0")
        assert Registry().enabled is False
        monkeypatch.setenv(OBS_ENV_VAR, "1")
        assert Registry().enabled is True
        monkeypatch.delenv(OBS_ENV_VAR)
        assert Registry().enabled is True

    def test_explicit_enabled_overrides_env(self, monkeypatch):
        monkeypatch.setenv(OBS_ENV_VAR, "0")
        assert Registry(enabled=True).enabled is True


class TestDefaultRegistry:
    def test_global_registry_is_stable(self):
        assert get_registry() is get_registry()
