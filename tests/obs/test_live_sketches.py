"""Tests for the live streaming sketches: exactness and merge laws.

Every sketch claims *bit-equality* with the batch pipeline over the
ingested prefix — these tests check that claim directly against the
real batch implementations (CSR degrees, ``reciprocated_edge_mask``,
``weakly_connected_components``), plus the merge algebra that makes
sharded sketching sound.
"""

import numpy as np
import pytest

from repro.graph.components import weakly_connected_components
from repro.graph.csr import CSRGraph
from repro.graph.reciprocity import reciprocated_edge_mask
from repro.obs.live import (
    AttributeSketch,
    ComponentSketch,
    DegreeSketch,
    ReciprocitySketch,
    ccdf_bucket_counts,
    sample_source_indices,
)


def random_edges(rng, n_nodes=200, n_edges=1500):
    """Deduplicated random directed edges without self-loops."""
    sources = rng.integers(0, n_nodes, size=n_edges * 2)
    targets = rng.integers(0, n_nodes, size=n_edges * 2)
    keep = sources != targets
    keys = np.unique(sources[keep] * (1 << 32) + targets[keep])
    keys = rng.permutation(keys)[:n_edges]
    return keys // (1 << 32), keys % (1 << 32)


class TestCcdfBucketCounts:
    def test_known_values(self):
        # degrees 1,2,3,4,8: counts[k] = #values >= 2**k
        assert ccdf_bucket_counts([1, 2, 3, 4, 8]) == [5, 4, 2, 1]

    def test_zeros_contribute_nothing(self):
        assert ccdf_bucket_counts([0, 0, 1]) == [1]
        assert ccdf_bucket_counts([0, 0]) == []
        assert ccdf_bucket_counts([]) == []

    def test_integer_exact_on_large_random_sample(self):
        rng = np.random.default_rng(4)
        degrees = rng.geometric(0.05, size=5000)
        counts = ccdf_bucket_counts(degrees)
        for k, count in enumerate(counts):
            assert count == int((degrees >= 2**k).sum())


class TestSampleSourceIndices:
    def test_deterministic_and_sorted(self):
        a = sample_source_indices(1000, 8)
        b = sample_source_indices(1000, 8)
        assert np.array_equal(a, b)
        assert np.array_equal(a, np.sort(a))
        assert len(a) == 8
        assert a[0] == 0
        assert a[-1] < 1000

    def test_k_capped_at_n(self):
        assert np.array_equal(sample_source_indices(3, 8), [0, 1, 2])

    def test_degenerate(self):
        assert sample_source_indices(0, 8).size == 0
        assert sample_source_indices(10, 0).size == 0


class TestDegreeSketch:
    def test_matches_csr_degrees(self):
        rng = np.random.default_rng(7)
        sources, targets = random_edges(rng)
        sketch = DegreeSketch()
        sketch.add_edges(sources, targets)
        graph = CSRGraph.from_edge_arrays(sources, targets)
        assert np.array_equal(sketch.out_degrees(), graph.out_degrees())
        assert np.array_equal(sketch.in_degrees(), graph.in_degrees())
        assert sketch.n_nodes == graph.n
        assert sketch.n_edges == graph.n_edges

    def test_isolated_profiles_join_the_node_universe(self):
        sketch = DegreeSketch()
        sketch.add_edges([1], [2])
        sketch.add_nodes([9])  # crawled page with no surviving edges
        assert np.array_equal(sketch.node_ids(), [1, 2, 9])
        assert sketch.n_nodes == 3
        assert list(sketch.out_degrees()) == [1, 0, 0]

    def test_chunked_ingestion_equals_single_batch(self):
        rng = np.random.default_rng(8)
        sources, targets = random_edges(rng)
        whole = DegreeSketch()
        whole.add_edges(sources, targets)
        chunked = DegreeSketch()
        for i in range(0, len(sources), 97):
            chunked.add_edges(sources[i : i + 97], targets[i : i + 97])
        assert np.array_equal(whole.out_degrees(), chunked.out_degrees())
        assert whole.figures() == chunked.figures()

    def test_merge_equals_combined_ingest(self):
        rng = np.random.default_rng(9)
        sources, targets = random_edges(rng)
        cut = len(sources) // 3
        a, b = DegreeSketch(), DegreeSketch()
        a.add_edges(sources[:cut], targets[:cut])
        b.add_edges(sources[cut:], targets[cut:])
        a.merge(b)
        whole = DegreeSketch()
        whole.add_edges(sources, targets)
        assert np.array_equal(a.out_degrees(), whole.out_degrees())
        assert np.array_equal(a.in_degrees(), whole.in_degrees())
        assert a.n_edges == whole.n_edges
        assert a.figures() == whole.figures()


class TestReciprocitySketch:
    def assert_matches_batch(self, sketch, sources, targets):
        graph = CSRGraph.from_edge_arrays(sources, targets)
        mask = reciprocated_edge_mask(graph)
        assert sketch.n_reciprocal == int(mask.sum())
        # Bit-equality: the same two integers divided by float64 division.
        assert sketch.value() == float(mask.mean())

    def test_exact_on_random_edges(self):
        rng = np.random.default_rng(11)
        sources, targets = random_edges(rng, n_nodes=80)
        sketch = ReciprocitySketch()
        sketch.add_edges(sources, targets)
        self.assert_matches_batch(sketch, sources, targets)
        assert sketch.n_reciprocal > 0  # the test must exercise pairs

    def test_chunked_ingestion_exact(self):
        # Pairs completed across chunk boundaries are the hard case.
        rng = np.random.default_rng(12)
        sources, targets = random_edges(rng, n_nodes=60)
        sketch = ReciprocitySketch()
        for i in range(0, len(sources), 113):
            sketch.add_edges(sources[i : i + 113], targets[i : i + 113])
        self.assert_matches_batch(sketch, sources, targets)

    def test_merge_counts_cross_pairs(self):
        rng = np.random.default_rng(13)
        sources, targets = random_edges(rng, n_nodes=60)
        cut = len(sources) // 2
        a, b = ReciprocitySketch(), ReciprocitySketch()
        a.add_edges(sources[:cut], targets[:cut])
        b.add_edges(sources[cut:], targets[cut:])
        a.merge(b)
        self.assert_matches_batch(a, sources, targets)

    def test_edge_arrays_round_trip(self):
        sketch = ReciprocitySketch()
        sketch.add_edges([3, 1, 2], [1, 3, 5])
        sources, targets = sketch.edge_arrays()
        assert sorted(zip(sources.tolist(), targets.tolist())) == [
            (1, 3), (2, 5), (3, 1),
        ]

    def test_empty_value_is_zero(self):
        assert ReciprocitySketch().value() == 0.0


class TestComponentSketch:
    def test_matches_batch_wcc(self):
        rng = np.random.default_rng(17)
        # Sparse edges over many nodes → several components.
        sources, targets = random_edges(rng, n_nodes=400, n_edges=300)
        sketch = ComponentSketch()
        node_ids = np.unique(np.concatenate([sources, targets]))
        sketch.add_edges(sources, targets)
        graph = CSRGraph.from_edge_arrays(sources, targets)
        wcc = weakly_connected_components(graph)
        summary = sketch.summary(node_ids)
        assert summary["n_components"] == wcc.n_components
        assert summary["giant_size"] == wcc.giant_size
        assert summary["n_components"] > 1

    def test_isolated_nodes_are_singletons(self):
        sketch = ComponentSketch()
        sketch.add_edges([0], [1])
        sketch.add_nodes([5])
        assert sketch.summary([0, 1, 5]) == {"n_components": 2, "giant_size": 2}

    def test_incremental_equals_batch_ingest(self):
        rng = np.random.default_rng(18)
        sources, targets = random_edges(rng, n_nodes=200, n_edges=400)
        node_ids = np.unique(np.concatenate([sources, targets]))
        incremental = ComponentSketch()
        for i in range(0, len(sources), 59):
            incremental.add_edges(sources[i : i + 59], targets[i : i + 59])
        whole = ComponentSketch()
        whole.add_edges(sources, targets)
        assert incremental.summary(node_ids) == whole.summary(node_ids)

    def test_merge_joins_forests(self):
        rng = np.random.default_rng(19)
        sources, targets = random_edges(rng, n_nodes=200, n_edges=400)
        node_ids = np.unique(np.concatenate([sources, targets]))
        cut = len(sources) // 2
        a, b = ComponentSketch(), ComponentSketch()
        a.add_edges(sources[:cut], targets[:cut])
        b.add_edges(sources[cut:], targets[cut:])
        a.merge(b)
        whole = ComponentSketch()
        whole.add_edges(sources, targets)
        assert a.summary(node_ids) == whole.summary(node_ids)


class _FakeProfile:
    def __init__(self, fields, country=None):
        self.fields = fields
        self._country = country

    def country(self):
        return self._country


class TestAttributeSketch:
    def test_tallies_fields_and_countries(self):
        sketch = AttributeSketch()
        sketch.add_profile(_FakeProfile({"name": "a", "gender": "f"}, "US"))
        sketch.add_profile(_FakeProfile({"name": "b"}, "US"))
        sketch.add_profile(_FakeProfile({"name": "c", "gender": "m"}, "IN"))
        figures = sketch.figures()
        assert figures["attributes"]["name"] == 3
        assert figures["attributes"]["gender"] == 2
        assert figures["attributes"]["employment"] == 0
        assert figures["countries"] == {"IN": 1, "US": 2}

    def test_merge_adds_tallies(self):
        a, b = AttributeSketch(), AttributeSketch()
        a.add_profile(_FakeProfile({"name": "a", "gender": "f"}, "US"))
        b.add_profile(_FakeProfile({"name": "b", "gender": "m"}, "DE"))
        b.add_profile(_FakeProfile({"name": "c"}, "US"))
        a.merge(b)
        whole = AttributeSketch()
        for profile in (
            _FakeProfile({"name": "a", "gender": "f"}, "US"),
            _FakeProfile({"name": "b", "gender": "m"}, "DE"),
            _FakeProfile({"name": "c"}, "US"),
        ):
            whole.add_profile(profile)
        assert a.figures() == whole.figures()
        assert a.n_profiles == 3


class TestMergeAlgebra:
    """merge() commutes with ingestion order for every edge sketch."""

    @pytest.mark.parametrize("sketch_cls", [DegreeSketch, ReciprocitySketch])
    def test_merge_commutative(self, sketch_cls):
        rng = np.random.default_rng(23)
        sources, targets = random_edges(rng, n_nodes=50, n_edges=600)
        cut = len(sources) // 2

        def build(first, second):
            x, y = sketch_cls(), sketch_cls()
            x.add_edges(*first)
            y.add_edges(*second)
            x.merge(y)
            return x

        left = build(
            (sources[:cut], targets[:cut]), (sources[cut:], targets[cut:])
        )
        right = build(
            (sources[cut:], targets[cut:]), (sources[:cut], targets[:cut])
        )
        assert left.figures() == right.figures()
        assert left.n_edges == right.n_edges
