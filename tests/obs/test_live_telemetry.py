"""Tests for the LiveTelemetry hook: epochs, report writing, guards."""

import json

import pytest

from repro.core.pipeline import MeasurementStudy, StudyConfig
from repro.crawler.bfs import CrawlSnapshot
from repro.obs.metrics import Registry
from repro.obs.live import (
    LIVE_SCHEMA_VERSION,
    LiveTelemetry,
    merge_histogram_samples,
    validate_live_section,
)
from repro.obs.report import validate_run_report


class _FakeProfile:
    def __init__(self, fields=None, country=None):
        self.fields = dict(fields or {"name": "x"})
        self._country = country

    def country(self):
        return self._country


def snapshot(n_pages, n_edges, virtual_now=1.0):
    return CrawlSnapshot(
        started=0.0,
        virtual_now=virtual_now,
        n_pages=n_pages,
        n_edges=n_edges,
        frontier={},
        pool={},
        frontend={},
    )


def feed_pages(telemetry, pages):
    """Drive on_page for [(user_id, edges), ...] with fake profiles."""
    for user_id, edges in pages:
        telemetry.on_page(user_id, _FakeProfile(country="US"), edges)


class TestEpochEmission:
    def test_consistent_checkpoint_emits_epoch(self, tmp_path):
        tel = LiveTelemetry(
            tmp_path / "r.json", registry=Registry(enabled=True),
            epoch_every_pages=2, path_sources=0,
        )
        feed_pages(tel, [(0, [(0, 1)]), (1, [(1, 0)])])
        tel.on_checkpoint(snapshot(n_pages=2, n_edges=2))
        live = tel.live_section()
        assert live["epoch"]["sequence"] == 1
        assert live["epoch"]["n_pages"] == 2
        assert live["epoch"]["figures"]["reciprocity"] == 1.0
        assert validate_live_section(live) == []

    def test_inconsistent_checkpoint_skips_epoch(self, tmp_path):
        # The store journaled a page the telemetry never saw (crash
        # injected between the two hooks): the cut must not be published.
        tel = LiveTelemetry(
            tmp_path / "r.json", registry=Registry(enabled=True),
            epoch_every_pages=1, path_sources=0,
        )
        feed_pages(tel, [(0, [(0, 1)])])
        tel.on_checkpoint(snapshot(n_pages=2, n_edges=1))  # one page ahead
        assert tel.live_section()["epoch"] is None
        # The next consistent checkpoint publishes normally.
        feed_pages(tel, [(1, [])])
        tel.on_checkpoint(snapshot(n_pages=2, n_edges=1))
        assert tel.live_section()["epoch"]["n_pages"] == 2

    def test_history_ring_is_bounded(self, tmp_path):
        tel = LiveTelemetry(
            tmp_path / "r.json", registry=Registry(enabled=True),
            epoch_every_pages=1, path_sources=0, history=3,
        )
        for i in range(6):
            feed_pages(tel, [(i, [])])
            tel.on_checkpoint(snapshot(n_pages=i + 1, n_edges=0))
        live = tel.live_section()
        assert live["epoch"]["sequence"] == 6
        assert [e["sequence"] for e in live["history"]] == [4, 5]

    def test_should_checkpoint_follows_page_cadence(self):
        tel = LiveTelemetry(registry=Registry(enabled=True), epoch_every_pages=3)
        feed_pages(tel, [(0, []), (1, [])])
        assert not tel.should_checkpoint(2, 0.0)
        feed_pages(tel, [(2, [])])
        assert tel.should_checkpoint(3, 0.0)
        tel.on_checkpoint(snapshot(n_pages=3, n_edges=0))
        assert not tel.should_checkpoint(3, 0.0)

    def test_zero_cadence_never_requests_checkpoints(self):
        tel = LiveTelemetry(registry=Registry(enabled=True), epoch_every_pages=0)
        feed_pages(tel, [(i, []) for i in range(10)])
        assert not tel.should_checkpoint(10, 0.0)


class TestReportWriting:
    def test_report_is_schema_valid_and_terminal(self, tmp_path):
        path = tmp_path / "r.json"
        tel = LiveTelemetry(
            path, registry=Registry(enabled=True),
            epoch_every_pages=1, path_sources=0, config={"seed": 3},
        )
        feed_pages(tel, [(0, [(0, 1)])])
        tel.on_checkpoint(snapshot(n_pages=1, n_edges=1))
        running = json.loads(path.read_text())
        assert validate_run_report(running) == []
        assert running["kind"] == "live_crawl"
        assert running["extra"]["live"]["status"] == "running"
        assert running["config"] == {"seed": 3}

        from types import SimpleNamespace

        tel.on_finish(SimpleNamespace(stats=SimpleNamespace(pages_fetched=1)))
        final = json.loads(path.read_text())
        assert final["extra"]["live"]["status"] == "complete"
        assert final["coverage"]["pages_fetched"] == 1

    def test_abort_marks_status_and_error(self, tmp_path):
        path = tmp_path / "r.json"
        tel = LiveTelemetry(
            path, registry=Registry(enabled=True), path_sources=0
        )
        feed_pages(tel, [(0, [])])
        tel.on_abort(RuntimeError("machine fire"))
        live = json.loads(path.read_text())["extra"]["live"]
        assert live["status"] == "aborted"
        assert "machine fire" in live["error"]
        # on_finish after an abort must not overwrite the abort status.
        from types import SimpleNamespace

        tel.on_finish(SimpleNamespace(stats=SimpleNamespace(pages_fetched=1)))
        assert json.loads(path.read_text())["extra"]["live"]["status"] == "aborted"

    def test_progress_report_every_n_pages(self, tmp_path):
        path = tmp_path / "r.json"
        tel = LiveTelemetry(
            path, registry=Registry(enabled=True),
            progress_every_pages=2, epoch_every_pages=0, path_sources=0,
        )
        feed_pages(tel, [(0, [])])
        assert not path.exists()
        feed_pages(tel, [(1, [])])
        live = json.loads(path.read_text())["extra"]["live"]
        assert live["progress"]["pages"] == 2
        assert live["epoch"] is None

    def test_disabled_registry_disables_everything(self, tmp_path):
        path = tmp_path / "r.json"
        tel = LiveTelemetry(path, registry=Registry(enabled=False))
        feed_pages(tel, [(0, [(0, 1)])] * 5)
        tel.on_checkpoint(snapshot(n_pages=5, n_edges=5))
        assert not tel.should_checkpoint(5, 0.0)
        assert not path.exists()
        assert tel.degrees.n_edges == 0


class TestValidateLiveSection:
    def _valid(self):
        return {
            "live_schema_version": LIVE_SCHEMA_VERSION,
            "status": "running",
            "progress": {},
            "fleet": {},
            "epoch": None,
            "history": [],
        }

    def test_accepts_valid(self):
        assert validate_live_section(self._valid()) == []

    def test_flags_missing_keys_and_bad_status(self):
        live = self._valid()
        del live["progress"]
        live["status"] = "meltdown"
        problems = validate_live_section(live)
        assert any("progress" in p for p in problems)
        assert any("meltdown" in p for p in problems)

    def test_flags_newer_schema_version(self):
        live = self._valid()
        live["live_schema_version"] = LIVE_SCHEMA_VERSION + 1
        assert any("newer" in p for p in validate_live_section(live))

    def test_flags_malformed_epoch(self):
        live = self._valid()
        live["epoch"] = {"sequence": 1}
        problems = validate_live_section(live)
        assert any("n_pages" in p for p in problems)

    def test_rejects_non_mapping(self):
        assert validate_live_section([1]) != []


class TestMergeHistogramSamples:
    def test_pools_series(self):
        a = {
            "count": 2, "sum": 3.0, "min": 1.0, "max": 2.0,
            "bucket_edges": [1.0, 2.0, "+inf"], "cumulative_counts": [1, 2, 2],
        }
        b = {
            "count": 1, "sum": 9.0, "min": 9.0, "max": 9.0,
            "bucket_edges": [1.0, 2.0, "+inf"], "cumulative_counts": [0, 0, 1],
        }
        merged = merge_histogram_samples([a, b])
        assert merged["count"] == 3
        assert merged["sum"] == 12.0
        assert merged["min"] == 1.0
        assert merged["max"] == 9.0
        assert merged["cumulative_counts"] == [1, 2, 3]

    def test_skips_empty_series_and_returns_none_without_data(self):
        empty = {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
            "bucket_edges": [1.0, "+inf"], "cumulative_counts": [0, 0],
        }
        assert merge_histogram_samples([]) is None
        assert merge_histogram_samples([empty]) is None

    def test_mismatched_buckets_rejected(self):
        a = {
            "count": 1, "sum": 1.0, "min": 1.0, "max": 1.0,
            "bucket_edges": [1.0, "+inf"], "cumulative_counts": [1, 1],
        }
        b = dict(a, bucket_edges=[2.0, "+inf"])
        with pytest.raises(ValueError):
            merge_histogram_samples([a, b])


class TestEndToEndCrawl:
    @pytest.fixture(scope="class")
    def crawl(self, tmp_path_factory):
        from repro.obs import metrics as metrics_mod

        tmp = tmp_path_factory.mktemp("live")
        # The crawler publishes its fleet gauges to the global registry;
        # swap in a fresh one so the telemetry and the crawler agree.
        old_registry = metrics_mod.get_registry()
        metrics_mod.set_registry(Registry(enabled=True))
        try:
            tel = LiveTelemetry(
                tmp / "run_report.json",
                epoch_every_pages=200, progress_every_pages=100,
            )
            study = MeasurementStudy(StudyConfig(n_users=1200, seed=3))
            dataset = study.crawl(hooks=tel)
        finally:
            metrics_mod.set_registry(old_registry)
        return tel, dataset, tmp / "run_report.json"

    def test_final_report_is_terminal_and_valid(self, crawl):
        tel, dataset, path = crawl
        document = json.loads(path.read_text())
        assert validate_run_report(document) == []
        live = document["extra"]["live"]
        assert validate_live_section(live) == []
        assert live["status"] == "complete"
        assert live["progress"]["pages"] == len(dataset.profiles)
        assert live["epoch"]["n_edges"] == len(dataset.sources)

    def test_final_epoch_bit_equal_to_batch(self, crawl):
        from repro.analysis.streaming import verify_live_report

        _, dataset, path = crawl
        assert verify_live_report(path, dataset=dataset) == []

    def test_fleet_health_populated(self, crawl):
        _, _, path = crawl
        fleet = json.loads(path.read_text())["extra"]["live"]["fleet"]
        assert fleet["breakers"]["closed"] == 11
        assert fleet["fetch_latency"]["p50"] is not None
        assert fleet["fetch_latency"]["p99"] >= fleet["fetch_latency"]["p50"]

    def test_mean_path_refresh_present(self, crawl):
        _, _, path = crawl
        figures = json.loads(path.read_text())["extra"]["live"]["epoch"]["figures"]
        paths = figures["path_lengths"]
        assert paths is not None
        assert paths["n_sources"] == 8
        assert paths["mean_hops"] > 0
