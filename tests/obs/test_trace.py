"""Tests for the dual-clock span tracer."""

import pytest

from repro.obs.metrics import Registry
from repro.obs.trace import Tracer
from repro.platform.http import SimulatedClock


@pytest.fixture
def tracer() -> Tracer:
    return Tracer()


class TestSpans:
    def test_wall_time_recorded(self, tracer):
        with tracer.span("work"):
            pass
        (stats,) = tracer.summary()
        assert stats.name == "work"
        assert stats.count == 1
        assert stats.wall_seconds >= 0.0

    def test_nested_spans_build_paths(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        paths = {s.path: s.count for s in tracer.summary()}
        assert paths == {("outer",): 1, ("outer", "inner"): 2}

    def test_same_name_different_parents_kept_apart(self, tracer):
        with tracer.span("a"):
            with tracer.span("shared"):
                pass
        with tracer.span("b"):
            with tracer.span("shared"):
                pass
        paths = [s.path for s in tracer.summary()]
        assert ("a", "shared") in paths
        assert ("b", "shared") in paths

    def test_attributes_recorded(self, tracer):
        with tracer.span("crawl", machines=11):
            pass
        (stats,) = tracer.summary()
        assert stats.attributes == {"machines": 11}

    def test_exception_still_records_span(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.summary()[0].count == 1


class TestVirtualTime:
    def test_virtual_time_from_bound_clock(self, tracer):
        clock = SimulatedClock()
        tracer.bind_clock(clock)
        with tracer.span("crawl"):
            clock.advance(12.5)
        (stats,) = tracer.summary()
        assert stats.virtual_seconds == pytest.approx(12.5)
        assert stats.wall_seconds < 1.0  # virtual time is not wall time

    def test_nested_virtual_accounting(self, tracer):
        clock = SimulatedClock()
        tracer.bind_clock(clock)
        with tracer.span("outer"):
            clock.advance(1.0)
            with tracer.span("inner"):
                clock.advance(2.0)
            clock.advance(4.0)
        by_name = {s.name: s for s in tracer.summary()}
        assert by_name["outer"].virtual_seconds == pytest.approx(7.0)
        assert by_name["inner"].virtual_seconds == pytest.approx(2.0)

    def test_no_clock_means_zero_virtual(self, tracer):
        with tracer.span("work"):
            pass
        assert tracer.summary()[0].virtual_seconds == 0.0


class TestDisable:
    def test_disabled_tracer_records_nothing(self, tracer):
        tracer.disable()
        with tracer.span("work"):
            pass
        assert tracer.summary() == []

    def test_registry_disable_silences_tracer(self):
        registry = Registry(enabled=True)
        tracer = Tracer(registry=registry)
        registry.disable()
        with tracer.span("work"):
            pass
        assert tracer.summary() == []
        registry.enable()
        with tracer.span("work"):
            pass
        assert len(tracer.summary()) == 1


class TestSummaryRendering:
    def test_render_summary_indents_by_depth(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        text = tracer.render_summary()
        lines = text.splitlines()
        assert any(line.startswith("outer") for line in lines)
        assert any(line.startswith("  inner") for line in lines)

    def test_empty_summary(self, tracer):
        assert "no spans" in tracer.render_summary()

    def test_reset(self, tracer):
        with tracer.span("work"):
            pass
        tracer.reset()
        assert tracer.summary() == []

    def test_span_stats_json_dict(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner = [s for s in tracer.summary() if s.name == "inner"][0]
        record = inner.to_json_dict()
        assert record["path"] == "outer/inner"
        assert record["count"] == 1
        assert set(record) >= {"name", "path", "count", "wall_seconds", "virtual_seconds"}
