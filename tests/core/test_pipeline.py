"""Tests for the end-to-end measurement pipeline."""

import numpy as np

from repro.core import MeasurementStudy, StudyConfig
from repro.synth import WorldConfig


class TestStudyConfig:
    def test_default_world_from_top_level_params(self):
        config = StudyConfig(n_users=3_000, seed=42)
        world = config.world_config()
        assert world.n_users == 3_000
        assert world.seed == 42

    def test_explicit_world_wins(self):
        world = WorldConfig(n_users=1_000, seed=5)
        config = StudyConfig(n_users=9_999, world=world)
        assert config.world_config() is world


class TestRun:
    def test_all_artifacts_present(self, study_results):
        assert len(study_results.table1_top_users) == 20
        assert len(study_results.table2_attributes) == 17
        assert study_results.table3_tel_users.n_all > 0
        assert study_results.table4_row.n_nodes > 0
        assert len(study_results.table5_occupations) == 10
        assert len(study_results.fig6_countries) == 10
        assert len(study_results.fig7_penetration.points) > 10
        assert len(study_results.fig8_openness.by_country) == 10
        assert study_results.lost_edges.total_edges > 0

    def test_crawl_fraction_respected(self, study_results):
        config = study_results.config
        expected = int(config.n_users * config.crawl_fraction)
        assert study_results.dataset.n_profiles == expected

    def test_graph_larger_than_crawl(self, study_results):
        """Uncrawled endpoints appear in the graph, as in the paper
        (27.5M crawled of 35.1M nodes)."""
        assert study_results.graph.n > study_results.dataset.n_profiles

    def test_run_accepts_prebuilt_dataset(self):
        study = MeasurementStudy(
            StudyConfig(
                n_users=1_200,
                seed=3,
                crawl_fraction=1.0,
                path_sample_start=50,
                path_sample_max=50,
                path_mile_pairs=2_000,
            )
        )
        dataset = study.crawl()
        results = study.run(dataset=dataset)
        assert results.dataset is dataset

    def test_deterministic_crawl(self):
        def run_crawl():
            study = MeasurementStudy(StudyConfig(n_users=1_200, seed=9))
            return study.crawl()

        a, b = run_crawl(), run_crawl()
        assert np.array_equal(a.sources, b.sources)
        assert list(a.profiles) == list(b.profiles)
