"""Tests for crawl validation against ground truth."""

import numpy as np
import pytest

from repro.core.validation import validate_crawl
from repro.crawler.bfs import BidirectionalBFSCrawler, CrawlConfig


@pytest.fixture(scope="module")
def validation(small_world, small_crawl):
    return validate_crawl(small_world, small_crawl)


class TestFullCrawlValidation:
    def test_sound(self, validation):
        assert validation.is_sound()
        assert validation.n_false_edges == 0
        assert validation.privacy_leaks == 0

    def test_high_recall(self, validation):
        assert validation.edge_recall > 0.97
        assert validation.edge_precision == 1.0

    def test_full_coverage(self, validation):
        assert validation.profile_coverage == 1.0

    def test_field_recall_complete(self, validation):
        """An anonymous crawler sees exactly the public fields."""
        assert validation.field_recall == pytest.approx(1.0)

    def test_tel_users_agree(self, validation):
        assert validation.tel_user_agreement
        assert validation.missing_tel_users == 0


class TestPartialCrawlValidation:
    def test_partial_coverage_reported(self, small_world):
        crawler = BidirectionalBFSCrawler(
            small_world.frontend(), CrawlConfig(n_machines=2, max_pages=500)
        )
        dataset = crawler.crawl([small_world.seed_user_id()])
        validation = validate_crawl(small_world, dataset)
        assert validation.profile_coverage == pytest.approx(0.2)
        assert validation.is_sound()
        assert validation.edge_recall < 1.0


class TestDegenerateInputs:
    def test_empty_crawl(self, small_world):
        from repro.crawler.dataset import CrawlDataset

        empty = CrawlDataset(
            profiles={},
            sources=np.empty(0, dtype=np.int64),
            targets=np.empty(0, dtype=np.int64),
        )
        validation = validate_crawl(small_world, empty)
        assert validation.edge_recall == 0.0
        assert validation.edge_precision == 1.0
        assert validation.is_sound()
