"""Tests for paper-vs-measured comparisons."""

import math

import pytest

from repro.core.compare import Comparison, compare_results


class TestComparison:
    def test_ratio(self):
        c = Comparison("t", "m", paper=2.0, measured=1.0)
        assert c.ratio == 0.5

    def test_ratio_nan_for_zero_paper(self):
        c = Comparison("t", "m", paper=0.0, measured=1.0)
        assert math.isnan(c.ratio)


class TestCompareResults:
    @pytest.fixture(scope="class")
    def comparisons(self, study_results):
        return compare_results(study_results)

    def test_covers_every_artifact(self, comparisons):
        artifacts = {c.artifact for c in comparisons}
        for expected in (
            "Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
            "Figure 2", "Figure 3", "Figure 4a", "Figure 4b", "Figure 4c",
            "Figure 5", "Figure 6", "Figure 7", "Figure 8", "Figure 9a",
            "Figure 10", "Sec 2.2",
        ):
            assert expected in artifacts

    def test_measured_values_finite(self, comparisons):
        for c in comparisons:
            assert math.isfinite(c.measured), c.metric

    def test_scale_sensitive_flags(self, comparisons):
        scale_metrics = [c.metric for c in comparisons if c.scale_sensitive]
        assert any("path length" in m for m in scale_metrics)

    def test_key_shape_targets_hold(self, comparisons, study_results):
        """The binary who-wins comparisons must pass on the default study.

        The strict "DE most conservative" check needs bench-scale located
        samples (DE holds ~2% of users); at test scale we assert bottom-3.
        """
        by_metric = {(c.artifact, c.metric): c for c in comparisons}
        assert by_metric[("Figure 7", "India is top GPR")].measured == 1.0
        assert "DE" in study_results.fig8_openness.ranking()[-3:]
        assert by_metric[
            ("Figure 9a", "reciprocal<friends<random ordering")
        ].measured == 1.0
        assert by_metric[("Figure 10", "US is dominant sink")].measured == 1.0

    def test_reciprocity_above_twitter(self, comparisons):
        row = next(
            c for c in comparisons
            if c.artifact == "Table 4" and c.metric == "global reciprocity"
        )
        assert row.measured > 0.221
