"""Sanity tests for the embedded paper reference values."""

import pytest

from repro.core.paper_tables import GooglePlusPaper as P, TABLE4_ROWS


class TestTable4Rows:
    def test_four_networks(self):
        assert [r.network for r in TABLE4_ROWS] == [
            "Google+", "Facebook", "Twitter", "Orkut",
        ]

    def test_google_plus_row_matches_paper(self):
        gplus = TABLE4_ROWS[0]
        assert gplus.nodes == 35e6
        assert gplus.path_length == 5.9
        assert gplus.reciprocity_percent == 32.0
        assert gplus.diameter == 19

    def test_orkut_degrees_unreported(self):
        orkut = TABLE4_ROWS[3]
        assert orkut.mean_in_degree is None


class TestGooglePlusConstants:
    def test_crawl_counts(self):
        assert P.CRAWLED_PROFILES == 27_556_390
        assert P.GRAPH_NODES == 35_114_957
        assert P.GRAPH_EDGES == 575_141_097

    def test_crawled_fraction_consistent(self):
        assert P.CRAWLED_PROFILES / P.GRAPH_NODES == pytest.approx(0.78, abs=0.01)

    def test_lost_edge_fraction_consistent(self):
        lost = (P.CAPPED_DECLARED_EDGES - P.CAPPED_COLLECTED_EDGES) / P.GRAPH_EDGES
        assert lost == pytest.approx(P.LOST_EDGE_FRACTION, abs=0.002)

    def test_tel_rate_consistent(self):
        assert P.TEL_USERS / P.CRAWLED_PROFILES == pytest.approx(
            P.TEL_USER_RATE, abs=2e-4
        )

    def test_giant_scc_fraction_consistent(self):
        assert P.GIANT_SCC_SIZE / P.GRAPH_NODES == pytest.approx(0.72, abs=0.01)

    def test_country_shares_sum_below_one(self):
        assert sum(P.TOP_COUNTRY_SHARES.values()) < 1.0
        assert sum(P.TEL_COUNTRY_SHARES.values()) < 1.0

    def test_self_loops_cover_top10(self):
        assert len(P.SELF_LOOPS) == 10

    def test_gender_splits_sum_to_one(self):
        assert sum(P.GENDER_ALL.values()) == pytest.approx(1.0, abs=0.01)
        assert sum(P.GENDER_TEL.values()) == pytest.approx(1.0, abs=0.01)
