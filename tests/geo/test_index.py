"""Tests for the geo index over a crawl dataset."""

import numpy as np
import pytest

from repro.crawler.dataset import CrawlDataset
from repro.crawler.parse import ParsedProfile
from repro.geo.index import build_geo_index
from repro.platform.models import Place


def dataset_with_places() -> CrawlDataset:
    profiles = {
        1: ParsedProfile(
            user_id=1, name="a",
            fields={"places_lived": [Place("London", 51.51, -0.13, "GB")]},
        ),
        2: ParsedProfile(user_id=2, name="b"),  # no location
        3: ParsedProfile(
            user_id=3, name="c",
            fields={"places_lived": [
                Place("Paris", 48.86, 2.35, "FR"),
                Place("Berlin", 52.52, 13.41, "DE"),
            ]},
        ),
        4: ParsedProfile(
            user_id=4, name="d",
            fields={"places_lived": [Place("Nowhere", -10.0, -140.0, "XX")]},
        ),
    }
    return CrawlDataset(
        profiles=profiles,
        sources=np.array([1, 3], dtype=np.int64),
        targets=np.array([3, 1], dtype=np.int64),
    )


class TestGeoIndex:
    def test_only_located_and_resolvable_users(self):
        index = build_geo_index(dataset_with_places())
        assert index.n_located == 2  # user 2 has no place, user 4 unresolvable
        assert set(index.user_ids.tolist()) == {1, 3}

    def test_last_place_wins(self):
        index = build_geo_index(dataset_with_places())
        position = index.position_of[3]
        assert index.countries[position] == "DE"

    def test_position_map_consistent(self):
        index = build_geo_index(dataset_with_places())
        for position, user_id in enumerate(index.user_ids):
            assert index.position_of[int(user_id)] == position

    def test_country_counts(self):
        index = build_geo_index(dataset_with_places())
        assert index.country_counts() == {"GB": 1, "DE": 1}

    def test_empty_dataset(self):
        dataset = CrawlDataset(
            profiles={},
            sources=np.empty(0, dtype=np.int64),
            targets=np.empty(0, dtype=np.int64),
        )
        index = build_geo_index(dataset)
        assert index.n_located == 0

    def test_located_fraction_on_study(self, study_results):
        """~27% of crawled users share location (paper Section 4)."""
        fraction = study_results.geo.n_located / study_results.dataset.n_profiles
        assert fraction == pytest.approx(0.2675, abs=0.08)
