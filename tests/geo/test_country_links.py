"""Tests for the country-to-country link graph."""

import numpy as np
import pytest

from repro.crawler.dataset import CrawlDataset
from repro.crawler.parse import ParsedProfile
from repro.geo.country_links import build_country_link_graph
from repro.geo.index import build_geo_index
from repro.platform.models import Place

PLACES = {
    1: Place("London", 51.51, -0.13, "GB"),
    2: Place("Manchester", 53.48, -2.24, "GB"),
    3: Place("New York", 40.71, -74.01, "US"),
    4: Place("Boston", 42.36, -71.06, "US"),
}


def make_dataset(edges: list[tuple[int, int]]) -> CrawlDataset:
    profiles = {
        uid: ParsedProfile(
            user_id=uid, name=str(uid), fields={"places_lived": [place]}
        )
        for uid, place in PLACES.items()
    }
    arr = np.array(edges, dtype=np.int64)
    return CrawlDataset(profiles=profiles, sources=arr[:, 0], targets=arr[:, 1])


class TestCountryLinkGraph:
    @pytest.fixture(scope="class")
    def graph(self):
        # GB: 1 domestic edge + 3 to US -> self-loop 0.25.
        # US: 2 domestic edges -> self-loop 1.0.
        dataset = make_dataset(
            [(1, 2), (1, 3), (1, 4), (2, 3), (3, 4), (4, 3)]
        )
        index = build_geo_index(dataset)
        return build_country_link_graph(dataset, index, ["GB", "US"])

    def test_rows_normalised(self, graph):
        assert graph.weights.sum(axis=1) == pytest.approx([1.0, 1.0])

    def test_self_loops(self, graph):
        assert graph.self_loop("GB") == pytest.approx(0.25)
        assert graph.self_loop("US") == pytest.approx(1.0)

    def test_cross_weight(self, graph):
        assert graph.weight("GB", "US") == pytest.approx(0.75)
        assert graph.weight("US", "GB") == pytest.approx(0.0)

    def test_node_share(self, graph):
        assert graph.node_share.tolist() == pytest.approx([0.5, 0.5])

    def test_edges_over_threshold(self, graph):
        edges = graph.edges_over(0.5)
        assert ("GB", "US", pytest.approx(0.75)) in [
            (s, t, w) for s, t, w in edges
        ]
        assert all(w >= 0.5 for _, _, w in edges)

    def test_country_without_users_has_zero_row(self):
        dataset = make_dataset([(1, 2)])
        index = build_geo_index(dataset)
        graph = build_country_link_graph(dataset, index, ["GB", "DE"])
        assert graph.self_loop("DE") == 0.0
        assert graph.weights[1].sum() == 0.0
