"""Tests for coordinate-to-country resolution."""

import numpy as np
import pytest

from repro.geo.resolve import CountryResolver
from repro.synth.cities import build_gazetteer


@pytest.fixture(scope="module")
def resolver() -> CountryResolver:
    return CountryResolver()


class TestResolve:
    def test_city_centres_resolve_to_their_country(self, resolver):
        for code, cities in build_gazetteer().items():
            for city in cities:
                assert resolver.resolve(city.latitude, city.longitude) == code

    def test_slight_offset_still_resolves(self, resolver):
        # 0.3 degrees off Berlin is still Germany.
        assert resolver.resolve(52.52 + 0.3, 13.41 - 0.3) == "DE"

    def test_middle_of_pacific_unresolved(self, resolver):
        assert resolver.resolve(-10.0, -140.0) is None

    def test_max_miles_configurable(self):
        tight = CountryResolver(max_miles=1.0)
        assert tight.resolve(52.9, 13.41) is None  # ~26 miles off Berlin

    def test_resolve_many_matches_scalar(self, resolver):
        cities = [c for group in build_gazetteer().values() for c in group][:60]
        lats = np.array([c.latitude for c in cities])
        lons = np.array([c.longitude for c in cities])
        batch = resolver.resolve_many(lats, lons)
        scalar = [resolver.resolve(lat, lon) for lat, lon in zip(lats, lons)]
        assert batch == scalar

    def test_resolve_many_empty(self, resolver):
        assert resolver.resolve_many(np.array([]), np.array([])) == []

    def test_chunking_boundary(self, resolver):
        # More points than one chunk (4096) exercises the chunk loop.
        lats = np.full(5000, 48.86)
        lons = np.full(5000, 2.35)
        results = resolver.resolve_many(lats, lons)
        assert len(results) == 5000
        assert set(results) == {"FR"}
