"""Tests for path-mile computations on hand-built datasets."""

import numpy as np
import pytest

from repro.crawler.dataset import CrawlDataset
from repro.crawler.parse import ParsedProfile
from repro.geo.index import build_geo_index
from repro.geo.pathmiles import average_path_mile_by_country, compute_path_miles
from repro.platform.models import Place

# Two London users (mutual), one Sydney user followed by a Londoner.
PLACES = {
    1: Place("London", 51.51, -0.13, "GB"),
    2: Place("London", 51.52, -0.10, "GB"),
    3: Place("Sydney", -33.87, 151.21, "AU"),
}


def make_dataset() -> CrawlDataset:
    profiles = {
        uid: ParsedProfile(
            user_id=uid, name=str(uid), fields={"places_lived": [place]}
        )
        for uid, place in PLACES.items()
    }
    sources = np.array([1, 2, 1], dtype=np.int64)
    targets = np.array([2, 1, 3], dtype=np.int64)
    return CrawlDataset(profiles=profiles, sources=sources, targets=targets)


class TestComputePathMiles:
    @pytest.fixture(scope="class")
    def samples(self):
        dataset = make_dataset()
        index = build_geo_index(dataset)
        return compute_path_miles(
            dataset, index, np.random.default_rng(0), max_pairs=100
        )

    def test_friend_distances(self, samples):
        assert len(samples.friends) == 3
        # Two short London-London edges, one long London-Sydney edge.
        short = np.sort(samples.friends)[:2]
        assert (short < 10).all()
        assert samples.friends.max() > 9_000

    def test_reciprocal_pairs_detected(self, samples):
        assert len(samples.reciprocal) == 2  # both directions of 1<->2
        assert (samples.reciprocal < 10).all()

    def test_random_pairs_exclude_linked(self, samples):
        # Only unlinked located pair is (2, 3) in either direction.
        assert len(samples.random_pairs) > 0
        assert (samples.random_pairs > 9_000).all()

    def test_fraction_within(self, samples):
        assert samples.fraction_within(10, "reciprocal") == pytest.approx(1.0)
        assert samples.fraction_within(10, "friends") == pytest.approx(2 / 3)


class TestCountryAverages:
    def test_grouped_by_source_country(self):
        dataset = make_dataset()
        index = build_geo_index(dataset)
        stats = average_path_mile_by_country(dataset, index, ["GB", "AU"])
        gb_mean, gb_std = stats["GB"]
        # GB-sourced edges: two short, one ~10560 miles.
        assert gb_mean > 3_000
        assert gb_std > 0
        au_mean, _ = stats["AU"]
        assert np.isnan(au_mean)  # AU user has no outgoing located edge


class TestEdgeCases:
    def test_fraction_within_empty_population(self):
        from repro.geo.pathmiles import PathMileSamples

        samples = PathMileSamples(
            friends=np.empty(0), reciprocal=np.empty(0), random_pairs=np.empty(0)
        )
        assert np.isnan(samples.fraction_within(100.0, "friends"))

    def test_dataset_without_located_users(self):
        from repro.crawler.dataset import CrawlDataset
        from repro.crawler.parse import ParsedProfile
        from repro.geo.pathmiles import compute_path_miles

        dataset = CrawlDataset(
            profiles={1: ParsedProfile(user_id=1, name="x")},
            sources=np.empty(0, dtype=np.int64),
            targets=np.empty(0, dtype=np.int64),
        )
        index = build_geo_index(dataset)
        samples = compute_path_miles(
            dataset, index, np.random.default_rng(0), max_pairs=10
        )
        assert len(samples.friends) == 0
        assert len(samples.random_pairs) == 0
