"""Tests for haversine distances."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geo.distance import EARTH_RADIUS_MILES, haversine_miles, pairwise_miles

lat = st.floats(min_value=-90, max_value=90, allow_nan=False)
lon = st.floats(min_value=-180, max_value=180, allow_nan=False)


class TestKnownDistances:
    def test_new_york_to_los_angeles(self):
        miles = haversine_miles(40.71, -74.01, 34.05, -118.24)
        assert 2300 < float(miles) < 2600

    def test_london_to_paris(self):
        miles = haversine_miles(51.51, -0.13, 48.86, 2.35)
        assert 200 < float(miles) < 230

    def test_equator_degree(self):
        miles = haversine_miles(0, 0, 0, 1)
        assert float(miles) == pytest.approx(69.1, abs=0.5)

    def test_antipodes(self):
        miles = haversine_miles(0, 0, 0, 180)
        assert float(miles) == pytest.approx(np.pi * EARTH_RADIUS_MILES, rel=1e-6)


class TestProperties:
    @given(lat, lon)
    @settings(max_examples=60, deadline=None)
    def test_zero_distance_to_self(self, a, b):
        assert float(haversine_miles(a, b, a, b)) == pytest.approx(0.0, abs=1e-6)

    @given(lat, lon, lat, lon)
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, a1, b1, a2, b2):
        forward = float(haversine_miles(a1, b1, a2, b2))
        backward = float(haversine_miles(a2, b2, a1, b1))
        assert forward == pytest.approx(backward, rel=1e-9, abs=1e-9)

    @given(lat, lon, lat, lon)
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_half_circumference(self, a1, b1, a2, b2):
        miles = float(haversine_miles(a1, b1, a2, b2))
        assert 0.0 <= miles <= np.pi * EARTH_RADIUS_MILES + 1e-6

    @given(lat, lon, lat, lon, lat, lon)
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, a1, b1, a2, b2, a3, b3):
        ab = float(haversine_miles(a1, b1, a2, b2))
        bc = float(haversine_miles(a2, b2, a3, b3))
        ac = float(haversine_miles(a1, b1, a3, b3))
        # Slack scales with distance: haversine loses absolute precision
        # near the antipode, where arcsin's argument saturates at 1.
        assert ac <= ab + bc + 1e-9 * (ab + bc) + 1e-6


class TestVectorisation:
    def test_broadcasting(self):
        lats = np.array([0.0, 10.0])
        miles = haversine_miles(lats, 0.0, 0.0, 0.0)
        assert miles.shape == (2,)
        assert miles[0] == pytest.approx(0.0)

    def test_pairwise(self):
        lats = np.array([0.0, 0.0, 10.0])
        lons = np.array([0.0, 1.0, 0.0])
        miles = pairwise_miles(lats, lons, np.array([0, 0]), np.array([1, 2]))
        assert len(miles) == 2
        assert miles[0] == pytest.approx(69.1, abs=0.5)
