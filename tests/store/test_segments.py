"""Segment format, shard sealing, rollback, and compaction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crawler.dataset import CrawlDataset
from repro.obs.metrics import Registry
from repro.store.segments import (
    SegmentError,
    SegmentWriter,
    compact,
    iter_segment_paths,
    load_edges,
    read_segment,
    segment_edge_count,
    write_segment,
)


@pytest.fixture
def registry() -> Registry:
    return Registry()


class TestSegmentFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "seg-000001.edges"
        write_segment(path, np.array([1, 2, 3]), np.array([4, 5, 6]))
        sources, targets = read_segment(path)
        assert sources.tolist() == [1, 2, 3]
        assert targets.tolist() == [4, 5, 6]
        assert segment_edge_count(path) == 3

    def test_empty_segment(self, tmp_path):
        path = tmp_path / "seg-000001.edges"
        write_segment(path, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        sources, targets = read_segment(path)
        assert len(sources) == 0 and len(targets) == 0

    def test_mismatched_columns_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_segment(tmp_path / "s", np.array([1, 2]), np.array([3]))

    def test_corrupt_data_fails_crc(self, tmp_path):
        path = tmp_path / "seg-000001.edges"
        write_segment(path, np.array([1, 2, 3]), np.array([4, 5, 6]))
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(SegmentError, match="CRC"):
            read_segment(path)

    def test_truncated_file_detected(self, tmp_path):
        path = tmp_path / "seg-000001.edges"
        write_segment(path, np.array([1, 2, 3]), np.array([4, 5, 6]))
        data = path.read_bytes()
        path.write_bytes(data[:-8])
        with pytest.raises(SegmentError, match="data bytes"):
            read_segment(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "seg-000001.edges"
        path.write_bytes(b"NOTSEG" + b"\x00" * 20)
        with pytest.raises(SegmentError, match="magic"):
            read_segment(path)
        with pytest.raises(SegmentError, match="magic"):
            segment_edge_count(path)


class TestSegmentWriter:
    def test_seals_at_shard_limit(self, tmp_path, registry):
        writer = SegmentWriter(tmp_path, shard_edges=3, registry=registry)
        for i in range(7):
            writer.append(i, i + 100)
        assert len(writer.sealed_names()) == 2
        assert writer.n_sealed_edges == 6
        assert writer.n_buffered == 1

    def test_explicit_seal_and_reload(self, tmp_path, registry):
        writer = SegmentWriter(tmp_path, registry=registry)
        writer.extend([(1, 2), (3, 4)])
        writer.seal()
        assert writer.sealed_names() == ["seg-000001.edges"]
        reopened = SegmentWriter(tmp_path, registry=registry)
        assert reopened.sealed_names() == ["seg-000001.edges"]
        assert reopened.n_sealed_edges == 2
        reopened.append(5, 6)
        reopened.seal()
        assert reopened.sealed_names() == ["seg-000001.edges", "seg-000002.edges"]

    def test_seal_empty_buffer_is_noop(self, tmp_path, registry):
        writer = SegmentWriter(tmp_path, registry=registry)
        assert writer.seal() is None
        assert writer.sealed_names() == []

    def test_load_edges_concatenates_in_order(self, tmp_path, registry):
        writer = SegmentWriter(tmp_path, shard_edges=2, registry=registry)
        writer.extend([(1, 10), (2, 20), (3, 30)])
        writer.seal()
        sources, targets = load_edges(tmp_path)
        assert sources.tolist() == [1, 2, 3]
        assert targets.tolist() == [10, 20, 30]

    def test_load_edges_by_name_subset(self, tmp_path, registry):
        writer = SegmentWriter(tmp_path, shard_edges=2, registry=registry)
        writer.extend([(1, 10), (2, 20), (3, 30), (4, 40)])
        sources, _ = load_edges(tmp_path, names=["seg-000001.edges"])
        assert sources.tolist() == [1, 2]

    def test_load_edges_empty_directory(self, tmp_path):
        sources, targets = load_edges(tmp_path / "nothing")
        assert sources.dtype == np.int64
        assert len(sources) == 0 and len(targets) == 0

    def test_rollback_deletes_suffix(self, tmp_path, registry):
        writer = SegmentWriter(tmp_path, shard_edges=2, registry=registry)
        writer.extend([(i, i) for i in range(6)])
        writer.append(99, 99)  # buffered, not sealed
        assert len(writer.sealed_names()) == 3
        writer.rollback(["seg-000001.edges"])
        assert writer.sealed_names() == ["seg-000001.edges"]
        assert writer.n_buffered == 0
        assert [p.name for p in iter_segment_paths(tmp_path)] == ["seg-000001.edges"]

    def test_rollback_rejects_non_prefix(self, tmp_path, registry):
        writer = SegmentWriter(tmp_path, shard_edges=1, registry=registry)
        writer.extend([(1, 1), (2, 2)])
        with pytest.raises(SegmentError, match="prefix"):
            writer.rollback(["seg-000002.edges"])

    def test_metrics_count_sealed_edges(self, tmp_path, registry):
        writer = SegmentWriter(tmp_path, shard_edges=2, registry=registry)
        writer.extend([(1, 1), (2, 2), (3, 3), (4, 4)])
        assert registry.counter("store.segments_sealed", "").value() == 2
        assert registry.counter("store.segment_edges", "").value() == 4


class TestCompact:
    def test_compact_produces_loadable_archive(self, tmp_path, registry):
        seg_dir = tmp_path / "segments"
        writer = SegmentWriter(seg_dir, shard_edges=2, registry=registry)
        writer.extend([(1, 2), (3, 4), (5, 6)])
        writer.seal()
        out = tmp_path / "archive"
        compact(seg_dir, out)
        # CrawlDataset.load needs the companion files save() would write.
        (out / "profiles.jsonl").write_text("")
        dataset = CrawlDataset.load(out)
        assert dataset.sources.tolist() == [1, 3, 5]
        assert dataset.targets.tolist() == [2, 4, 6]
