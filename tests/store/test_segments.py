"""Segment format, shard sealing, rollback, and compaction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crawler.dataset import CrawlDataset
from repro.obs.metrics import Registry
from repro.store.segments import (
    SegmentError,
    SegmentWriter,
    compact,
    iter_segment_paths,
    load_edges,
    read_segment,
    segment_edge_count,
    write_segment,
)


@pytest.fixture
def registry() -> Registry:
    return Registry()


class TestSegmentFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "seg-000001.edges"
        write_segment(path, np.array([1, 2, 3]), np.array([4, 5, 6]))
        sources, targets = read_segment(path)
        assert sources.tolist() == [1, 2, 3]
        assert targets.tolist() == [4, 5, 6]
        assert segment_edge_count(path) == 3

    def test_empty_segment(self, tmp_path):
        path = tmp_path / "seg-000001.edges"
        write_segment(path, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        sources, targets = read_segment(path)
        assert len(sources) == 0 and len(targets) == 0

    def test_mismatched_columns_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_segment(tmp_path / "s", np.array([1, 2]), np.array([3]))

    def test_corrupt_data_fails_crc(self, tmp_path):
        path = tmp_path / "seg-000001.edges"
        write_segment(path, np.array([1, 2, 3]), np.array([4, 5, 6]))
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(SegmentError, match="CRC"):
            read_segment(path)

    def test_truncated_file_detected(self, tmp_path):
        path = tmp_path / "seg-000001.edges"
        write_segment(path, np.array([1, 2, 3]), np.array([4, 5, 6]))
        data = path.read_bytes()
        path.write_bytes(data[:-8])
        with pytest.raises(SegmentError, match="data bytes"):
            read_segment(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "seg-000001.edges"
        path.write_bytes(b"NOTSEG" + b"\x00" * 20)
        with pytest.raises(SegmentError, match="magic"):
            read_segment(path)
        with pytest.raises(SegmentError, match="magic"):
            segment_edge_count(path)


class TestSegmentWriter:
    def test_seals_at_shard_limit(self, tmp_path, registry):
        writer = SegmentWriter(tmp_path, shard_edges=3, registry=registry)
        for i in range(7):
            writer.append(i, i + 100)
        assert len(writer.sealed_names()) == 2
        assert writer.n_sealed_edges == 6
        assert writer.n_buffered == 1

    def test_explicit_seal_and_reload(self, tmp_path, registry):
        writer = SegmentWriter(tmp_path, registry=registry)
        writer.extend([(1, 2), (3, 4)])
        writer.seal()
        assert writer.sealed_names() == ["seg-000001.edges"]
        reopened = SegmentWriter(tmp_path, registry=registry)
        assert reopened.sealed_names() == ["seg-000001.edges"]
        assert reopened.n_sealed_edges == 2
        reopened.append(5, 6)
        reopened.seal()
        assert reopened.sealed_names() == ["seg-000001.edges", "seg-000002.edges"]

    def test_seal_empty_buffer_is_noop(self, tmp_path, registry):
        writer = SegmentWriter(tmp_path, registry=registry)
        assert writer.seal() is None
        assert writer.sealed_names() == []

    def test_load_edges_concatenates_in_order(self, tmp_path, registry):
        writer = SegmentWriter(tmp_path, shard_edges=2, registry=registry)
        writer.extend([(1, 10), (2, 20), (3, 30)])
        writer.seal()
        sources, targets = load_edges(tmp_path)
        assert sources.tolist() == [1, 2, 3]
        assert targets.tolist() == [10, 20, 30]

    def test_load_edges_by_name_subset(self, tmp_path, registry):
        writer = SegmentWriter(tmp_path, shard_edges=2, registry=registry)
        writer.extend([(1, 10), (2, 20), (3, 30), (4, 40)])
        sources, _ = load_edges(tmp_path, names=["seg-000001.edges"])
        assert sources.tolist() == [1, 2]

    def test_load_edges_empty_directory(self, tmp_path):
        sources, targets = load_edges(tmp_path / "nothing")
        assert sources.dtype == np.int64
        assert len(sources) == 0 and len(targets) == 0

    def test_rollback_deletes_suffix(self, tmp_path, registry):
        writer = SegmentWriter(tmp_path, shard_edges=2, registry=registry)
        writer.extend([(i, i) for i in range(6)])
        writer.append(99, 99)  # buffered, not sealed
        assert len(writer.sealed_names()) == 3
        writer.rollback(["seg-000001.edges"])
        assert writer.sealed_names() == ["seg-000001.edges"]
        assert writer.n_buffered == 0
        assert [p.name for p in iter_segment_paths(tmp_path)] == ["seg-000001.edges"]

    def test_rollback_rejects_non_prefix(self, tmp_path, registry):
        writer = SegmentWriter(tmp_path, shard_edges=1, registry=registry)
        writer.extend([(1, 1), (2, 2)])
        with pytest.raises(SegmentError, match="prefix"):
            writer.rollback(["seg-000002.edges"])

    def test_metrics_count_sealed_edges(self, tmp_path, registry):
        writer = SegmentWriter(tmp_path, shard_edges=2, registry=registry)
        writer.extend([(1, 1), (2, 2), (3, 3), (4, 4)])
        assert registry.counter("store.segments_sealed", "").value() == 2
        assert registry.counter("store.segment_edges", "").value() == 4


class TestSealObservability:
    def test_sealed_edges_gauge_tracks_durable_edges(self, tmp_path, registry):
        gauge = registry.gauge("store.sealed_edges", "")
        writer = SegmentWriter(tmp_path, shard_edges=2, registry=registry)
        assert gauge.value() == 0.0
        writer.extend([(1, 1), (2, 2), (3, 3)])  # two sealed, one buffered
        assert gauge.value() == 2.0
        writer.seal()
        assert gauge.value() == 3.0
        writer.rollback(["seg-000001.edges"])
        assert gauge.value() == 2.0

    def test_gauge_initialised_from_existing_shards(self, tmp_path, registry):
        writer = SegmentWriter(tmp_path, shard_edges=2, registry=registry)
        writer.extend([(1, 1), (2, 2), (3, 3), (4, 4)])
        # A fresh writer (resume) over the same directory reports the
        # edges already durable on disk, before any new appends.
        reopened = Registry()
        SegmentWriter(tmp_path, shard_edges=2, registry=reopened)
        assert reopened.gauge("store.sealed_edges", "").value() == 4.0

    def test_on_seal_receives_exact_sealed_columns(self, tmp_path, registry):
        seals = []
        writer = SegmentWriter(
            tmp_path, shard_edges=2, registry=registry,
            on_seal=lambda path, s, t: seals.append((path.name, s.tolist(), t.tolist())),
        )
        writer.extend([(1, 10), (2, 20), (3, 30)])
        writer.seal()
        assert seals == [
            ("seg-000001.edges", [1, 2], [10, 20]),
            ("seg-000002.edges", [3], [30]),
        ]
        # Each callback's columns match what the shard holds on disk.
        for name, sources, targets in seals:
            disk_sources, disk_targets = read_segment(tmp_path / name)
            assert disk_sources.tolist() == sources
            assert disk_targets.tolist() == targets

    def test_on_seal_fires_after_shard_is_durable(self, tmp_path, registry):
        observed = []

        def callback(path, sources, targets):
            # The shard must already be complete and CRC-clean when the
            # observer runs — consumers may re-read it immediately.
            observed.append(read_segment(path)[0].tolist())

        writer = SegmentWriter(tmp_path, shard_edges=4, registry=registry)
        writer.on_seal = callback  # attachable after construction too
        writer.extend([(7, 8), (9, 10)])
        writer.seal()
        assert observed == [[7, 9]]

    def test_empty_seal_does_not_fire_callback(self, tmp_path, registry):
        seals = []
        writer = SegmentWriter(
            tmp_path, registry=registry, on_seal=lambda *a: seals.append(a)
        )
        writer.seal()
        assert seals == []


class TestCompact:
    def test_compact_produces_loadable_archive(self, tmp_path, registry):
        seg_dir = tmp_path / "segments"
        writer = SegmentWriter(seg_dir, shard_edges=2, registry=registry)
        writer.extend([(1, 2), (3, 4), (5, 6)])
        writer.seal()
        out = tmp_path / "archive"
        compact(seg_dir, out)
        # CrawlDataset.load needs the companion files save() would write.
        (out / "profiles.jsonl").write_text("")
        dataset = CrawlDataset.load(out)
        assert dataset.sources.tolist() == [1, 3, 5]
        assert dataset.targets.tolist() == [2, 4, 6]
