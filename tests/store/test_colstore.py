"""Spill/reload roundtrip for out-of-core columnar circles."""

import numpy as np
import pytest

from repro.platform.columnar import ColumnarCircles
from repro.serve.cache import page_to_bytes
from repro.store.colstore import (
    EDGES_NAME,
    load_circles,
    MANIFEST_NAME,
    spill_circles,
    spill_service,
    SpillError,
    verify_spill,
)
from repro.store.segments import read_segment
from repro.synth import build_world, WorldConfig

ARRAY_NAMES = (
    "out_indptr",
    "out_targets",
    "out_labels",
    "flat_indptr",
    "flat_targets",
    "in_indptr",
    "in_sources",
)


@pytest.fixture(scope="module")
def world():
    return build_world(
        WorldConfig(n_users=800, seed=21, engine="fast", store="columnar")
    )


def _circles(world) -> ColumnarCircles:
    return world.service.columns().circles


class TestSpillRoundtrip:
    def test_arrays_roundtrip_memory_mapped(self, world, tmp_path):
        circles = _circles(world)
        manifest = spill_circles(circles, tmp_path)
        assert manifest.name == MANIFEST_NAME
        reloaded = load_circles(tmp_path)
        for name in ARRAY_NAMES:
            original, mapped = getattr(circles, name), getattr(reloaded, name)
            assert isinstance(mapped, np.memmap), name
            assert np.array_equal(original, mapped), name
        assert reloaded.labels == circles.labels

    def test_flat_aliasing_survives_reload(self, world, tmp_path):
        circles = _circles(world)
        assert circles.flat_targets is circles.out_targets  # fastgen: no dups
        spill_circles(circles, tmp_path)
        reloaded = load_circles(tmp_path)
        assert reloaded.flat_targets is reloaded.out_targets
        assert not (tmp_path / "flat_targets.npy").exists()

    def test_edge_segment_holds_the_link_list(self, world, tmp_path):
        circles = _circles(world)
        spill_circles(circles, tmp_path)
        sources, targets = read_segment(tmp_path / EDGES_NAME)
        assert len(sources) == int(circles.flat_indptr[-1])
        expected_src = np.repeat(
            np.arange(len(circles.flat_indptr) - 1), np.diff(circles.flat_indptr)
        )
        assert np.array_equal(sources, expected_src)
        assert np.array_equal(targets, circles.flat_targets)

    def test_verify_clean_spill(self, world, tmp_path):
        spill_circles(_circles(world), tmp_path)
        assert verify_spill(tmp_path) == []


class TestSpillIntegrity:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(SpillError, match="columns.json"):
            load_circles(tmp_path)
        assert verify_spill(tmp_path)

    def test_missing_column_file(self, world, tmp_path):
        spill_circles(_circles(world), tmp_path)
        (tmp_path / "in_sources.npy").unlink()
        with pytest.raises(SpillError, match="in_sources"):
            load_circles(tmp_path)

    def test_corrupt_column_detected_by_verify(self, world, tmp_path):
        spill_circles(_circles(world), tmp_path)
        path = tmp_path / "out_targets.npy"
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert any("out_targets" in p for p in verify_spill(tmp_path))

    def test_edge_count_mismatch(self, world, tmp_path):
        import json

        spill_circles(_circles(world), tmp_path)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        manifest["n_links"] += 1
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(SpillError, match="links"):
            load_circles(tmp_path)


class TestSpillService:
    def test_reads_identical_after_spill(self, world, tmp_path):
        service = world.service
        users = sorted(service.user_ids())[::37]
        before = {
            uid: (
                service.followees(uid),
                service.followers(uid),
                page_to_bytes(service.profile_page(uid, None)),
            )
            for uid in users
        }
        spill_service(service, tmp_path)
        assert isinstance(service.columns().circles.out_targets, np.memmap)
        for uid in users:
            after = (
                service.followees(uid),
                service.followers(uid),
                page_to_bytes(service.profile_page(uid, None)),
            )
            assert after == before[uid], uid
