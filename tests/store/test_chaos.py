"""Chaos end-to-end: campaigns under scripted faults survive and resume.

The robustness headline: with a fault schedule throwing 503 bursts and a
whole-fleet ban at the crawl, the campaign still completes, dead letters
are journaled and re-driven, and a campaign killed mid-chaos resumes to
a dataset bit-identical to an uninterrupted run — fault RNGs, breaker
states, and the dead-letter queue all travel through the checkpoint.
"""

from __future__ import annotations

import pytest

from repro.crawler import BidirectionalBFSCrawler, CrawlDataset
from repro.crawler.lost_edges import estimate_dead_letter_loss
from repro.faults import FaultSchedule
from repro.obs.metrics import Registry
from repro.store import (
    CampaignConfig,
    CrawlCampaign,
    SimulatedCrash,
    dataset_diff,
)
from repro.store.campaign import ARCHIVE_DIR
from repro.synth import build_world, WorldConfig

#: A 503 burst during early expansion, then a whole-fleet ban window:
#: enough hostility that pages dead-letter and must be re-driven.
BAN_AND_BURST = {
    "seed": 5,
    "rules": [
        {
            "kind": "error_burst",
            "start": 0.1,
            "end": 0.6,
            "rate": 0.5,
            "retry_after": 0.01,
        },
        {"kind": "ip_ban", "start": 0.7, "end": 1.6, "retry_after": 0.05},
    ],
}

#: Backoffs calibrated to the simulated transport's ~20 ms request scale
#: (see ``python -m repro.faults``), with retries tight enough that the
#: ban window actually produces dead letters.
RESILIENCE = {
    "initial_backoff": 0.02,
    "max_backoff": 0.1,
    "breaker_cooldown": 0.1,
    "max_retries": 2,
}

CHAOS_CONFIG = CampaignConfig(
    n_users=500,
    seed=17,
    n_machines=4,
    checkpoint_every_pages=40,
    shard_edges=512,
    faults=BAN_AND_BURST,
    resilience=RESILIENCE,
)


@pytest.fixture(scope="module")
def reference() -> CrawlDataset:
    """The uninterrupted in-memory chaos crawl a campaign must reproduce."""
    config = CHAOS_CONFIG
    world = build_world(
        WorldConfig(
            n_users=config.n_users,
            seed=config.seed,
            circle_display_limit=config.circle_display_limit,
        )
    )
    frontend = world.frontend(
        rate_per_ip=config.rate_per_ip,
        burst=config.burst,
        error_rate=config.error_rate,
        faults=FaultSchedule.from_dict(config.faults),
    )
    crawler = BidirectionalBFSCrawler(frontend, config.crawl_config())
    return crawler.crawl([world.seed_user_id()])


class TestChaosSurvival:
    def test_the_chaos_actually_bites(self, reference):
        # Guard against a silently defanged scenario: the reference run
        # must have seen errors, bans, and dead letters that were
        # re-driven to full coverage.
        stats = reference.stats
        assert stats.server_errors > 0
        assert stats.banned > 0
        assert stats.redriven >= 2
        assert stats.dead_lettered == 0  # every dead letter recovered
        assert reference.n_profiles == CHAOS_CONFIG.n_users

    def test_campaign_completes_under_chaos(self, tmp_path, reference):
        campaign = CrawlCampaign(tmp_path / "camp", CHAOS_CONFIG)
        dataset = campaign.run(registry=Registry())
        assert campaign.status == "complete"
        assert dataset_diff(dataset, reference) == []

    def test_dead_letters_are_journaled(self, tmp_path, reference):
        campaign = CrawlCampaign(tmp_path / "camp", CHAOS_CONFIG)
        campaign.run(registry=Registry())
        records = campaign.inspect()["journal"]["records"]
        # One "dead" record per dead letter plus one "redriven" per
        # recovery — the reference saw at least two of each.
        assert records.get("dead_letter", 0) >= 2 * reference.stats.redriven


class TestChaosCrashAndResume:
    def resume_after_crash(self, directory, reference, **crash) -> None:
        campaign = CrawlCampaign(directory, CHAOS_CONFIG)
        with pytest.raises(SimulatedCrash):
            campaign.run(registry=Registry(), **crash)
        resumed = CrawlCampaign(directory)
        dataset = resumed.run(registry=Registry())
        assert dataset_diff(dataset, reference) == []
        assert resumed.status == "complete"
        loaded = CrawlDataset.load(directory / ARCHIVE_DIR)
        assert dataset_diff(loaded, reference) == []

    def test_crash_during_the_burst(self, tmp_path, reference):
        # ~page 30 lands inside the 503 burst window.
        self.resume_after_crash(tmp_path / "camp", reference, crash_after_pages=30)

    def test_crash_during_the_ban(self, tmp_path, reference):
        # A later kill: breaker states and the dead-letter queue are
        # non-trivial when the checkpoint is cut.
        self.resume_after_crash(tmp_path / "camp", reference, crash_after_pages=150)

    def test_crash_twice_then_finish(self, tmp_path, reference):
        directory = tmp_path / "camp"
        with pytest.raises(SimulatedCrash):
            CrawlCampaign(directory, CHAOS_CONFIG).run(
                registry=Registry(), crash_after_pages=60
            )
        with pytest.raises(SimulatedCrash):
            CrawlCampaign(directory).run(registry=Registry(), crash_after_pages=120)
        dataset = CrawlCampaign(directory).run(registry=Registry())
        assert dataset_diff(dataset, reference) == []


class TestGracefulDegradation:
    def test_budget_exhaustion_degrades_to_dead_letters(self):
        # A tiny retry budget under the same chaos: the crawl must not
        # abort — it fails fast, dead-letters what it cannot fetch, and
        # the loss estimator reports the damage.
        config = CampaignConfig(
            n_users=500,
            seed=17,
            n_machines=4,
            faults=BAN_AND_BURST,
            resilience={**RESILIENCE, "retry_budget": 4, "max_redrive_rounds": 0},
        )
        world = build_world(WorldConfig(n_users=500, seed=17))
        frontend = world.frontend(faults=FaultSchedule.from_dict(config.faults))
        crawler = BidirectionalBFSCrawler(frontend, config.crawl_config())
        dataset = crawler.crawl([world.seed_user_id()])
        assert dataset.stats.dead_lettered > 0
        assert dataset.n_profiles < 500
        loss = estimate_dead_letter_loss(dataset)
        assert loss.estimated_missing_edges > 0
        assert 0.0 < loss.lost_fraction < 1.0
