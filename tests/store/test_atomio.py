"""The atomic-publish helper and the StoreIO seam's unarmed behavior."""

from __future__ import annotations

import pytest

from repro.store.atomio import (
    DEFAULT_IO,
    StoreIO,
    fsync_dir,
    publish_bytes,
    publish_text,
)


class TestFsyncDir:
    def test_syncs_a_real_directory(self, tmp_path):
        fsync_dir(tmp_path)  # must not raise

    def test_tolerates_missing_directory(self, tmp_path):
        # Platforms (and gone-away paths) where O_DIRECTORY fails must
        # degrade to a no-op, not kill the writer.
        fsync_dir(tmp_path / "nope")


class TestPublishBytes:
    def test_publishes_atomically(self, tmp_path):
        target = tmp_path / "blob.bin"
        out = publish_bytes(target, b"hello world")
        assert out == target
        assert target.read_bytes() == b"hello world"
        # No temp debris under any outcome.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "blob.bin"
        publish_bytes(target, b"old")
        publish_bytes(target, b"new contents")
        assert target.read_bytes() == b"new contents"

    def test_durable_false_skips_fsync(self, tmp_path):
        calls = []

        class Spy(StoreIO):
            def fsync(self, handle):
                calls.append("fsync")
                super().fsync(handle)

            def fsync_dir(self, path):
                calls.append("fsync_dir")

        publish_bytes(tmp_path / "a", b"x", durable=False, io=Spy())
        assert calls == []
        publish_bytes(tmp_path / "b", b"x", durable=True, io=Spy())
        assert calls == ["fsync", "fsync_dir"]

    def test_publish_text_roundtrip(self, tmp_path):
        target = tmp_path / "doc.json"
        publish_text(target, '{"a": 1}\n')
        assert target.read_text(encoding="utf-8") == '{"a": 1}\n'

    def test_published_hook_sees_final_path(self, tmp_path):
        seen = []

        class Spy(StoreIO):
            def published(self, path, kind="file"):
                seen.append((path, kind))

        target = tmp_path / "seg-000001.edges"
        publish_bytes(target, b"data", kind="segment", io=Spy())
        assert seen == [(target, "segment")]


class TestUnarmedStoreIO:
    """The production path: plain os semantics, zero decisions."""

    def test_default_io_is_unarmed(self):
        assert DEFAULT_IO.armed is False

    def test_write_and_fsync_pass_through(self, tmp_path):
        io = StoreIO()
        path = tmp_path / "f"
        with open(path, "wb") as handle:
            io.write(handle, b"payload")
            io.fsync(handle)
        assert path.read_bytes() == b"payload"

    def test_replace_passes_through(self, tmp_path):
        io = StoreIO()
        src = tmp_path / "src"
        dst = tmp_path / "dst"
        src.write_bytes(b"v2")
        dst.write_bytes(b"v1")
        io.replace(src, dst, kind="checkpoint")
        assert dst.read_bytes() == b"v2"
        assert not src.exists()

    def test_hooks_are_no_ops(self, tmp_path):
        io = StoreIO()
        io.published(tmp_path / "whatever", kind="segment")
        with open(tmp_path / "j", "wb") as handle:
            io.flushed(handle, tmp_path / "j", 0)
        io.bind_clock(object())

    def test_state_roundtrip_is_empty(self):
        io = StoreIO()
        state = io.export_state()
        assert state == {}
        io.restore_state(state)


@pytest.mark.parametrize("payload", [b"", b"x", b"a" * 100_000])
def test_publish_sizes(tmp_path, payload):
    target = tmp_path / "sized.bin"
    publish_bytes(target, payload)
    assert target.read_bytes() == payload
