"""Checkpoint envelope, retention, and corrupt-fallback behaviour."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import Registry
from repro.store.checkpoint import (
    CheckpointError,
    CheckpointRecord,
    checkpoint_path,
    frontier_from_state,
    list_checkpoint_paths,
    load_checkpoint,
    load_latest,
    stats_from_snapshot,
    write_checkpoint,
)


def make_record(sequence: int, n_pages: int = 10) -> CheckpointRecord:
    return CheckpointRecord(
        sequence=sequence,
        n_pages=n_pages,
        n_edges=n_pages * 3,
        journal_offset=1000 + sequence,
        segments=[f"seg-{i:06d}.edges" for i in range(1, sequence + 1)],
        snapshot={"marker": sequence},
    )


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = write_checkpoint(tmp_path, make_record(1))
        assert path.name == "ckpt-000001.json"
        loaded = load_checkpoint(path)
        assert loaded == make_record(1)

    def test_retention_prunes_oldest(self, tmp_path):
        for sequence in range(1, 6):
            write_checkpoint(tmp_path, make_record(sequence), keep=3)
        names = [p.name for p in list_checkpoint_paths(tmp_path)]
        assert names == ["ckpt-000003.json", "ckpt-000004.json", "ckpt-000005.json"]

    def test_keep_zero_retains_everything(self, tmp_path):
        for sequence in range(1, 4):
            write_checkpoint(tmp_path, make_record(sequence), keep=0)
        assert len(list_checkpoint_paths(tmp_path)) == 3

    def test_missing_directory_lists_empty(self, tmp_path):
        assert list_checkpoint_paths(tmp_path / "nope") == []


class TestCorruption:
    def test_flipped_payload_fails_crc(self, tmp_path):
        path = write_checkpoint(tmp_path, make_record(1))
        document = json.loads(path.read_text())
        document["record"]["n_pages"] = 999_999
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError, match="CRC"):
            load_checkpoint(path)

    def test_not_json(self, tmp_path):
        path = checkpoint_path(tmp_path, 1)
        path.write_text("garbage{{{")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_missing_envelope(self, tmp_path):
        path = checkpoint_path(tmp_path, 1)
        path.write_text(json.dumps({"record": {}}))
        with pytest.raises(CheckpointError, match="envelope"):
            load_checkpoint(path)

    def test_load_latest_falls_back_past_corruption(self, tmp_path):
        registry = Registry()
        write_checkpoint(tmp_path, make_record(1))
        newest = write_checkpoint(tmp_path, make_record(2), keep=0)
        newest.write_text("corrupted beyond recognition")
        record = load_latest(tmp_path, registry=registry)
        assert record is not None and record.sequence == 1
        assert registry.counter("store.checkpoints_rejected", "").value() == 1

    def test_load_latest_none_when_all_corrupt(self, tmp_path):
        registry = Registry()
        write_checkpoint(tmp_path, make_record(1)).write_text("zap")
        assert load_latest(tmp_path, registry=registry) is None

    def test_load_latest_empty_directory(self, tmp_path):
        assert load_latest(tmp_path, registry=Registry()) is None


class TestRebuilders:
    def test_frontier_from_state(self):
        state = {"queue": [5, 6], "seen": [1, 2, 5, 6], "visited": [1, 2]}
        frontier = frontier_from_state(state)
        assert frontier.export_state() == state
        assert frontier.pop() == 5

    def test_stats_from_snapshot_sums_fleet(self):
        snapshot = {
            "started": 10.0,
            "virtual_now": 110.0,
            "frontier": {"queue": [], "seen": [1, 2, 3], "visited": [1, 2, 3]},
            "pool": {
                "next": 0,
                "fetchers": [
                    {
                        "pages_fetched": 4,
                        "not_found": 1,
                        "throttled": 2,
                        "server_errors": 0,
                    },
                    {
                        "pages_fetched": 6,
                        "not_found": 0,
                        "throttled": 1,
                        "server_errors": 3,
                    },
                ],
            },
        }
        stats = stats_from_snapshot(snapshot, n_machines=2)
        assert stats.pages_fetched == 10
        assert stats.not_found == 1
        assert stats.throttled == 3
        assert stats.server_errors == 3
        assert stats.virtual_duration == 100.0
        assert stats.n_machines == 2
        assert stats.discovered == 3
