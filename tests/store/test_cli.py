"""The ``python -m repro.store`` command surface.

Everything runs ``main(argv)`` in-process except the kill test, which
needs a real SIGKILL and therefore a real subprocess — that test is the
same scenario the CI smoke job runs.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

from repro.crawler import CrawlDataset
from repro.obs.report import RUN_REPORT_FILENAME, RunReport, validate_run_report
from repro.store.__main__ import main

SRC_DIR = Path(__file__).resolve().parents[2] / "src"

#: One small campaign, reused as CLI arguments everywhere in this file.
RUN_ARGS = [
    "--users", "500",
    "--seed", "17",
    "--machines", "4",
    "--checkpoint-every-pages", "40",
]


def run_args(directory: Path, *extra: str) -> list[str]:
    return ["run", "--dir", str(directory), *RUN_ARGS, *extra]


class TestRunInspectCompactVerify:
    def test_full_cycle(self, tmp_path, capsys):
        camp = tmp_path / "camp"
        assert main(run_args(camp)) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["status"] == "complete"
        assert summary["pages"] > 0

        assert main(["inspect", "--dir", str(camp), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["status"] == "complete"
        assert report["journal"]["records"]["page"] == summary["pages"]
        assert report["archive"] is True

        assert main(["inspect", "--dir", str(camp)]) == 0
        text = capsys.readouterr().out
        assert "campaign" in text and "segments" in text

        out = tmp_path / "archive"
        assert main(["compact", "--dir", str(camp), "--out", str(out)]) == 0
        capsys.readouterr()
        dataset = CrawlDataset.load(out)
        assert len(dataset.profiles) == summary["pages"]

        assert main(["verify", "--dir", str(camp), "--against", str(out)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_verify_detects_difference(self, tmp_path, capsys):
        a = tmp_path / "a"
        b = tmp_path / "b"
        assert main(run_args(a)) == 0
        assert main(["run", "--dir", str(b), "--users", "500", "--seed", "18"]) == 0
        capsys.readouterr()
        assert main(["verify", "--dir", str(a), "--against", str(b)]) == 1
        assert "DIFFER" in capsys.readouterr().out

    def test_resume_refuses_missing_campaign(self, tmp_path, capsys):
        assert main(["resume", "--dir", str(tmp_path / "nope")]) == 2
        assert "no campaign" in capsys.readouterr().out


class TestKillAndResume:
    def test_sigkill_then_resume_matches_reference(self, tmp_path, capsys):
        camp = tmp_path / "camp"
        env = dict(os.environ, PYTHONPATH=str(SRC_DIR))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.store"]
            + run_args(camp, "--kill-after-pages", "90"),
            env=env,
            capture_output=True,
        )
        assert proc.returncode == -signal.SIGKILL

        assert main(["resume", "--dir", str(camp), "--report"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["status"] == "complete"

        report = RunReport.load(camp / RUN_REPORT_FILENAME)
        assert validate_run_report(report.to_json_dict()) == []
        assert report.kind == "campaign"

        reference = tmp_path / "reference"
        assert main(run_args(reference)) == 0
        capsys.readouterr()
        assert main(["verify", "--dir", str(camp), "--against", str(reference)]) == 0


class TestFsckCommand:
    def test_clean_campaign_exits_zero(self, tmp_path, capsys):
        camp = tmp_path / "camp"
        assert main(run_args(camp)) == 0
        capsys.readouterr()
        assert main(["fsck", "--dir", str(camp)]) == 0
        assert "[clean]" in capsys.readouterr().out

        assert main(["fsck", "--dir", str(camp), "--scrub", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["status"] == "clean"
        assert report["schema"] == 1

    def test_damage_report_repair_cycle(self, tmp_path, capsys):
        from repro.store.campaign import CHECKPOINTS_DIR
        from repro.store.checkpoint import list_checkpoint_paths

        camp = tmp_path / "camp"
        assert main(run_args(camp)) == 0
        newest = list_checkpoint_paths(camp / CHECKPOINTS_DIR)[-1]
        newest.write_bytes(newest.read_bytes()[:-7])
        capsys.readouterr()

        assert main(["fsck", "--dir", str(camp)]) == 71
        assert "crc_mismatch" in capsys.readouterr().out
        assert main(["fsck", "--dir", str(camp), "--repair"]) == 0
        assert "healed" in capsys.readouterr().out
        assert main(["fsck", "--dir", str(camp)]) == 0

    def test_lost_journal_exits_72(self, tmp_path, capsys):
        camp = tmp_path / "camp"
        assert main(run_args(camp)) == 0
        (camp / "journal.wal").unlink()
        capsys.readouterr()
        assert main(["fsck", "--dir", str(camp)]) == 72
        assert "LOST pages" in capsys.readouterr().out


class TestSuperviseCommand:
    def test_supervise_clean_run(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("PYTHONPATH", str(SRC_DIR))
        camp = tmp_path / "camp"
        assert main([
            "supervise", "--dir", str(camp), *RUN_ARGS,
            "--backoff-base", "0.01", "--backoff-cap", "0.05",
        ]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["outcome"] == "complete"
        assert (camp / "supervise_report.json").exists()
