"""End-to-end campaign guarantees: kill anywhere, resume bit-identically.

The headline contract of :mod:`repro.store`: a crawl killed at *any*
point — mid-interval, exactly at a checkpoint boundary, before the first
checkpoint, or repeatedly — resumes to a dataset bit-identical to an
uninterrupted run: same edge arrays, same profiles, same CrawlStats.
"""

from __future__ import annotations

import pytest

from repro.crawler import BidirectionalBFSCrawler, CrawlDataset
from repro.obs.metrics import Registry
from repro.store import (
    CampaignConfig,
    CampaignError,
    CrawlCampaign,
    SimulatedCrash,
    dataset_diff,
)
from repro.store.campaign import ARCHIVE_DIR
from repro.synth import build_world, WorldConfig

#: Small but non-trivial: ~500 pages, a dozen checkpoints, several shards.
CONFIG = CampaignConfig(
    n_users=500,
    seed=17,
    n_machines=4,
    checkpoint_every_pages=40,
    shard_edges=512,
)

#: Same size but with failures and heavy throttling in play, so resuming
#: also has to restore the flakiness RNG and rate-limiter buckets exactly.
FLAKY_CONFIG = CampaignConfig(
    n_users=500,
    seed=23,
    n_machines=4,
    error_rate=0.08,
    rate_per_ip=2.0,
    burst=4.0,
    checkpoint_every_pages=40,
    shard_edges=512,
)


def reference_crawl(config: CampaignConfig) -> CrawlDataset:
    """The uninterrupted in-memory crawl a campaign must reproduce."""
    world = build_world(
        WorldConfig(
            n_users=config.n_users,
            seed=config.seed,
            circle_display_limit=config.circle_display_limit,
        )
    )
    frontend = world.frontend(
        rate_per_ip=config.rate_per_ip, burst=config.burst, error_rate=config.error_rate
    )
    crawler = BidirectionalBFSCrawler(frontend, config.crawl_config())
    return crawler.crawl([world.seed_user_id()])


@pytest.fixture(scope="module")
def reference() -> CrawlDataset:
    return reference_crawl(CONFIG)


@pytest.fixture(scope="module")
def flaky_reference() -> CrawlDataset:
    return reference_crawl(FLAKY_CONFIG)


class TestUninterrupted:
    def test_campaign_matches_plain_crawl(self, tmp_path, reference):
        campaign = CrawlCampaign(tmp_path / "camp", CONFIG)
        dataset = campaign.run(registry=Registry())
        assert dataset_diff(dataset, reference) == []
        assert campaign.status == "complete"

    def test_archive_loads_unchanged(self, tmp_path, reference):
        campaign = CrawlCampaign(tmp_path / "camp", CONFIG)
        campaign.run(registry=Registry())
        loaded = CrawlDataset.load(tmp_path / "camp" / ARCHIVE_DIR)
        assert dataset_diff(loaded, reference) == []

    def test_inspect_accounts_for_everything(self, tmp_path, reference):
        campaign = CrawlCampaign(tmp_path / "camp", CONFIG)
        campaign.run(registry=Registry())
        report = campaign.inspect()
        assert report["status"] == "complete"
        assert report["journal"]["records"]["page"] == len(reference.profiles)
        assert report["segments"]["edges"] == len(reference.sources)
        assert report["archive"] is True
        assert report["checkpoints"]  # retention keeps the newest few


class TestCrashAndResume:
    def resume_after_crash(self, directory, config, reference, **crash) -> None:
        campaign = CrawlCampaign(directory, config)
        with pytest.raises(SimulatedCrash):
            campaign.run(registry=Registry(), **crash)
        assert campaign.status == "running"
        resumed = CrawlCampaign(directory)
        dataset = resumed.run(registry=Registry())
        assert dataset_diff(dataset, reference) == []
        assert resumed.status == "complete"
        loaded = CrawlDataset.load(directory / ARCHIVE_DIR)
        assert dataset_diff(loaded, reference) == []

    def test_crash_mid_interval(self, tmp_path, reference):
        # Dies 10 pages into the third checkpoint interval.
        self.resume_after_crash(
            tmp_path / "camp", CONFIG, reference, crash_after_pages=90
        )

    def test_crash_at_checkpoint_boundary(self, tmp_path, reference):
        # Dies immediately after the second checkpoint is durable.
        self.resume_after_crash(
            tmp_path / "camp", CONFIG, reference, crash_after_checkpoints=2
        )

    def test_crash_before_first_checkpoint(self, tmp_path, reference):
        # Nothing durable yet: resume restarts from scratch, same result.
        self.resume_after_crash(
            tmp_path / "camp", CONFIG, reference, crash_after_pages=10
        )

    def test_crash_twice_then_finish(self, tmp_path, reference):
        directory = tmp_path / "camp"
        campaign = CrawlCampaign(directory, CONFIG)
        with pytest.raises(SimulatedCrash):
            campaign.run(registry=Registry(), crash_after_pages=60)
        with pytest.raises(SimulatedCrash):
            CrawlCampaign(directory).run(registry=Registry(), crash_after_pages=50)
        dataset = CrawlCampaign(directory).run(registry=Registry())
        assert dataset_diff(dataset, reference) == []

    def test_crash_and_resume_with_failures_and_throttling(
        self, tmp_path, flaky_reference
    ):
        # The hard case: resuming must put the failure RNG, the token
        # buckets, and the virtual clock back exactly, or retries and
        # backoffs diverge and so does every downstream page.
        self.resume_after_crash(
            tmp_path / "camp", FLAKY_CONFIG, flaky_reference, crash_after_pages=110
        )

    def test_recovery_metrics(self, tmp_path, reference):
        directory = tmp_path / "camp"
        campaign = CrawlCampaign(directory, CONFIG)
        with pytest.raises(SimulatedCrash):
            campaign.run(registry=Registry(), crash_after_pages=90)
        registry = Registry()
        CrawlCampaign(directory).run(registry=registry)
        assert registry.counter("store.recoveries", "").value() == 1
        # The best-effort abort checkpoint lands at the crash point
        # (page 90), not the last periodic checkpoint (page 80).
        assert registry.counter("store.replayed_pages", "").value() == 90
        assert registry.counter("store.checkpoints", "").value() > 0


class TestCampaignDirectory:
    def test_conflicting_config_rejected(self, tmp_path):
        CrawlCampaign(tmp_path / "camp", CONFIG)
        with pytest.raises(CampaignError, match="different config"):
            CrawlCampaign(tmp_path / "camp", FLAKY_CONFIG)

    def test_reopen_without_config_loads_stored(self, tmp_path):
        CrawlCampaign(tmp_path / "camp", CONFIG)
        reopened = CrawlCampaign(tmp_path / "camp")
        assert reopened.config == CONFIG

    def test_compact_requires_a_checkpoint(self, tmp_path):
        campaign = CrawlCampaign(tmp_path / "camp", CONFIG)
        with pytest.raises(CampaignError, match="no checkpoint"):
            campaign.compact()

    def test_config_round_trips_through_json(self):
        data = CONFIG.to_json_dict()
        assert CampaignConfig.from_json_dict(data) == CONFIG


class TestDatasetDiff:
    def test_identical_datasets_diff_empty(self, reference):
        assert dataset_diff(reference, reference) == []

    def test_differences_are_reported(self, reference, flaky_reference):
        problems = dataset_diff(reference, flaky_reference)
        assert problems  # different worlds cannot match
        assert any("differ" in p for p in problems)
