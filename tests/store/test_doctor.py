"""fsck: verification, damage classification, repair, loss accounting.

A single small campaign is built once per module; every test damages a
fresh copy of it, so the matrix stays fast while each cell exercises the
real on-disk layout.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path

import pytest

from repro.obs.metrics import Registry
from repro.store.campaign import (
    CHECKPOINTS_DIR,
    JOURNAL_NAME,
    SEGMENTS_DIR,
    CampaignConfig,
    CrawlCampaign,
)
from repro.store.checkpoint import list_checkpoint_paths, load_checkpoint
from repro.store.doctor import LOSS_MANIFEST_NAME, QUARANTINE_DIR, fsck
from repro.store.journal import scan
from repro.store.segments import iter_segment_paths, read_segment

CONFIG = CampaignConfig(
    n_users=500,
    seed=17,
    n_machines=4,
    checkpoint_every_pages=60,
    shard_edges=512,
)


@pytest.fixture(scope="module")
def finished_campaign(tmp_path_factory) -> Path:
    directory = tmp_path_factory.mktemp("doctor") / "camp"
    CrawlCampaign(directory, CONFIG).run(registry=Registry())
    return directory


@pytest.fixture
def camp(finished_campaign, tmp_path) -> Path:
    copy = tmp_path / "camp"
    shutil.copytree(finished_campaign, copy)
    return copy


def tree_digest(directory: Path) -> dict[str, str]:
    return {
        str(p.relative_to(directory)): hashlib.md5(p.read_bytes()).hexdigest()
        for p in sorted(directory.rglob("*"))
        if p.is_file()
    }


class TestCleanDirectory:
    def test_clean_status(self, camp):
        report = fsck(camp, registry=Registry())
        assert report.status == "clean"
        assert report.ok
        assert report.findings == []
        assert report.lost_page_range is None

    def test_repair_scrub_is_byte_level_noop(self, camp):
        before = tree_digest(camp)
        report = fsck(camp, repair=True, scrub=True, registry=Registry())
        assert report.status == "clean"
        assert tree_digest(camp) == before
        assert not (camp / QUARANTINE_DIR).exists()

    def test_report_schema(self, camp):
        doc = fsck(camp, registry=Registry()).to_json_dict()
        assert doc["schema"] == 1
        assert doc["status"] == "clean"
        assert doc["n_pages_claimed"] == doc["n_pages_recovered"]
        json.dumps(doc)  # must be JSON-serializable as-is


def damage_truncate(path: Path) -> None:
    size = path.stat().st_size
    with open(path, "r+b") as handle:
        handle.truncate(max(1, size - max(3, size // 4)))


def damage_flip(path: Path) -> None:
    size = path.stat().st_size
    offset = int(size * 0.85)
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0x40]))


def damage_delete(path: Path) -> None:
    path.unlink()


DAMAGES = {"truncate": damage_truncate, "flip": damage_flip, "delete": damage_delete}


def append_journal_tail(camp: Path, n_records: int = 3) -> None:
    """Leave flushed-but-uncheckpointed records past the newest cut.

    A completed (or in-process-crashed) campaign always ends with a
    checkpoint at the journal's very end, so this is how the matrix gets
    the state a real SIGKILL leaves: durable journal bytes the next
    checkpoint never covered.
    """
    from repro.store.campaign import KIND_PAGE
    from repro.store.journal import JournalWriter

    writer = JournalWriter(camp / JOURNAL_NAME, registry=Registry())
    for index in range(n_records):
        writer.append(KIND_PAGE, b'{"tail": %d}' % index)
    writer.close()


def tail_truncate(path: Path) -> None:
    os.truncate(path, path.stat().st_size - 3)


def tail_flip(path: Path) -> None:
    size = path.stat().st_size
    with open(path, "r+b") as handle:
        handle.seek(size - 2)
        byte = handle.read(1)
        handle.seek(size - 2)
        handle.write(bytes([byte[0] ^ 0x40]))


class TestCorruptionMatrix:
    """Every (damage × file kind) cell classifies and repairs correctly."""

    @pytest.mark.parametrize("damage", [tail_truncate, tail_flip], ids=["truncate", "flip"])
    def test_journal_tail_damage_is_recoverable(self, camp, damage):
        # Damage confined to records past the newest checkpoint's offset
        # tears the valid prefix without touching anything durable.
        append_journal_tail(camp)
        assert fsck(camp, registry=Registry()).status == "clean"
        damage(camp / JOURNAL_NAME)
        report = fsck(camp, registry=Registry())
        assert report.status == "needs-repair"
        problems = {f.problem for f in report.findings}
        assert "torn_tail" in problems
        assert report.lost_page_range is None

        repaired = fsck(camp, repair=True, registry=Registry())
        assert repaired.status == "repaired"
        assert not scan(camp / JOURNAL_NAME).torn
        assert fsck(camp, registry=Registry()).status == "clean"

    def test_journal_delete_is_loss(self, camp):
        claimed = max(
            load_checkpoint(p).n_pages
            for p in list_checkpoint_paths(camp / CHECKPOINTS_DIR)
        )
        damage_delete(camp / JOURNAL_NAME)
        report = fsck(camp, registry=Registry())
        assert report.status == "unrecoverable"
        assert report.chosen_checkpoint is None
        assert report.lost_page_range == [1, claimed]

        repaired = fsck(camp, repair=True, registry=Registry())
        assert repaired.status == "unrecoverable"
        manifest = json.loads((camp / LOSS_MANIFEST_NAME).read_text())
        assert manifest["lost_page_range"] == [1, claimed]
        assert manifest["lost_pages"] == claimed
        # The unsatisfiable checkpoints were preserved, not deleted.
        assert (camp / QUARANTINE_DIR / CHECKPOINTS_DIR).is_dir()

    @pytest.mark.parametrize("damage", ["truncate", "flip", "delete"])
    def test_segment_damage_rebuilds_byte_identical(self, camp, damage):
        target = iter_segment_paths(camp / SEGMENTS_DIR)[0]
        pristine = target.read_bytes()
        DAMAGES[damage](target)
        report = fsck(camp, registry=Registry())
        assert report.status == "needs-repair"
        finding = next(f for f in report.findings if f.path.endswith(target.name))
        assert finding.severity == "recoverable_from_journal"
        assert finding.action == "rebuild"

        repaired = fsck(camp, repair=True, registry=Registry())
        assert repaired.status == "repaired"
        assert target.read_bytes() == pristine
        read_segment(target)  # verifies CRC
        assert fsck(camp, registry=Registry()).status == "clean"

    @pytest.mark.parametrize("damage", ["truncate", "flip"])
    def test_checkpoint_damage_falls_back_to_older(self, camp, damage):
        paths = list_checkpoint_paths(camp / CHECKPOINTS_DIR)
        assert len(paths) >= 2, "matrix needs at least two checkpoints"
        newest, fallback = paths[-1], paths[-2]
        fallback_record = load_checkpoint(fallback)
        DAMAGES[damage](newest)

        report = fsck(camp, registry=Registry())
        assert report.status == "needs-repair"
        finding = next(f for f in report.findings if f.path.endswith(newest.name))
        assert finding.problem == "crc_mismatch"
        assert finding.severity == "quarantinable"
        # Newest-verifiable-wins: the older checkpoint is the cut now.
        assert report.chosen_checkpoint == fallback_record.sequence
        assert report.n_pages_recovered == fallback_record.n_pages

        repaired = fsck(camp, repair=True, registry=Registry())
        assert repaired.status == "repaired"
        assert not newest.exists()
        assert (camp / QUARANTINE_DIR / CHECKPOINTS_DIR / newest.name).exists()
        assert fsck(camp, registry=Registry()).status == "clean"

    def test_checkpoint_delete_leaves_older_cut(self, camp):
        paths = list_checkpoint_paths(camp / CHECKPOINTS_DIR)
        fallback_record = load_checkpoint(paths[-2])
        damage_delete(paths[-1])
        # A vanished checkpoint leaves no evidence — the directory is
        # simply an older (consistent) version of itself.
        report = fsck(camp, registry=Registry())
        assert report.status == "clean"
        assert report.chosen_checkpoint == fallback_record.sequence


class TestOtherDamage:
    def test_stray_tmp_files_quarantined(self, camp):
        (camp / SEGMENTS_DIR / "seg-000099.edges.tmp").write_bytes(b"half")
        (camp / "manifest.json.tmp").write_bytes(b"half")
        report = fsck(camp, repair=True, registry=Registry())
        assert report.status == "repaired"
        assert not (camp / SEGMENTS_DIR / "seg-000099.edges.tmp").exists()
        assert not (camp / "manifest.json.tmp").exists()
        assert (camp / QUARANTINE_DIR / "manifest.json.tmp").exists()

    def test_unreferenced_corrupt_segment_quarantined(self, camp):
        names = [p.name for p in iter_segment_paths(camp / SEGMENTS_DIR)]
        last = int(names[-1][4:10])
        stray = camp / SEGMENTS_DIR / f"seg-{last + 1:06d}.edges"
        stray.write_bytes(b"RSEG1\n garbage")
        report = fsck(camp, repair=True, registry=Registry())
        assert report.status == "repaired"
        assert not stray.exists()
        assert fsck(camp, registry=Registry()).status == "clean"

    def test_multi_damage_single_repair_pass(self, camp):
        # Rot a segment AND the newest checkpoint AND leave tmp debris:
        # one --repair pass must settle all of it.
        damage_flip(iter_segment_paths(camp / SEGMENTS_DIR)[0])
        damage_flip(list_checkpoint_paths(camp / CHECKPOINTS_DIR)[-1])
        (camp / "junk.tmp").write_bytes(b"x")
        repaired = fsck(camp, repair=True, registry=Registry())
        assert repaired.status == "repaired"
        assert fsck(camp, registry=Registry()).status == "clean"

    def test_early_journal_rot_is_exact_loss(self, camp):
        # Flip a byte in the journal's early history: the valid prefix
        # collapses below every checkpoint's offset — provable loss with
        # an exact page range.
        path = camp / JOURNAL_NAME
        with open(path, "r+b") as handle:
            handle.seek(10)
            byte = handle.read(1)
            handle.seek(10)
            handle.write(bytes([byte[0] ^ 0x01]))
        claimed = max(
            load_checkpoint(p).n_pages
            for p in list_checkpoint_paths(camp / CHECKPOINTS_DIR)
        )
        report = fsck(camp, repair=True, registry=Registry())
        assert report.status == "unrecoverable"
        assert report.lost_page_range == [1, claimed]
        manifest = json.loads((camp / LOSS_MANIFEST_NAME).read_text())
        assert manifest["lost_page_range"] == [1, claimed]

    def test_scrub_catches_crc_preserving_damage(self, camp):
        # Rewrite a referenced segment with self-consistent (CRC-valid)
        # but wrong contents — only --scrub's journal cross-check sees it.
        import numpy as np

        from repro.store.segments import write_segment

        target = iter_segment_paths(camp / SEGMENTS_DIR)[0]
        pristine = target.read_bytes()
        n = len(read_segment(target)[0])
        write_segment(target, np.zeros(n, dtype=np.int64), np.zeros(n, dtype=np.int64))
        assert fsck(camp, registry=Registry()).status == "clean"  # CRC lies

        report = fsck(camp, scrub=True, repair=True, registry=Registry())
        assert report.status == "repaired"
        assert any(f.problem == "journal_mismatch" for f in report.findings)
        assert target.read_bytes() == pristine

    def test_fsck_metrics(self, camp):
        registry = Registry()
        damage_flip(iter_segment_paths(camp / SEGMENTS_DIR)[0])
        fsck(camp, repair=True, registry=registry)
        snap = {m["name"]: m for m in registry.snapshot()["metrics"]}
        assert "store.fsck.runs" in snap
        assert "store.fsck.findings" in snap
        assert "store.fsck.repairs" in snap
