"""Journal format, batching, and torn-tail recovery."""

from __future__ import annotations

import struct

import pytest

from repro.obs.metrics import Registry
from repro.store.journal import (
    HEADER_SIZE,
    JournalError,
    JournalWriter,
    MAGIC,
    iter_records,
    scan,
)


@pytest.fixture
def registry() -> Registry:
    return Registry()


def write_records(path, records, registry, **kwargs):
    with JournalWriter(path, registry=registry, **kwargs) as journal:
        for kind, body in records:
            journal.append(kind, body)
    return path


class TestRoundTrip:
    def test_records_come_back_in_order(self, tmp_path, registry):
        path = tmp_path / "j.wal"
        records = [(1, b"alpha"), (2, b""), (3, b"\x00" * 100), (1, b"omega")]
        write_records(path, records, registry)
        decoded = [(r.kind, r.body) for r in iter_records(path)]
        assert decoded == records

    def test_file_starts_with_magic(self, tmp_path, registry):
        path = write_records(tmp_path / "j.wal", [(1, b"x")], registry)
        assert path.read_bytes().startswith(MAGIC)

    def test_empty_journal_scans_clean(self, tmp_path, registry):
        path = write_records(tmp_path / "j.wal", [], registry)
        result = scan(path)
        assert result.n_records == 0
        assert result.valid_end == HEADER_SIZE
        assert not result.torn

    def test_scan_counts_by_kind(self, tmp_path, registry):
        path = write_records(
            tmp_path / "j.wal", [(1, b"a"), (1, b"b"), (7, b"c")], registry
        )
        result = scan(path)
        assert result.records_by_kind == {1: 2, 7: 1}

    def test_not_a_journal(self, tmp_path):
        path = tmp_path / "bogus.wal"
        path.write_bytes(b"NOPE!\n" + b"data")
        with pytest.raises(JournalError):
            list(iter_records(path))

    def test_upto_bounds_replay(self, tmp_path, registry):
        path = write_records(tmp_path / "j.wal", [(1, b"a"), (2, b"b")], registry)
        first = next(iter_records(path))
        bounded = list(iter_records(path, upto=first.end_offset))
        assert [(r.kind, r.body) for r in bounded] == [(1, b"a")]


class TestBatching:
    def test_appends_buffer_until_flush(self, tmp_path, registry):
        path = tmp_path / "j.wal"
        journal = JournalWriter(path, flush_records=1000, registry=registry)
        journal.append(1, b"held")
        assert scan(path).n_records == 0  # still buffered
        journal.flush()
        assert scan(path).n_records == 1
        journal.close()

    def test_record_count_triggers_flush(self, tmp_path, registry):
        path = tmp_path / "j.wal"
        journal = JournalWriter(path, flush_records=4, registry=registry)
        for _ in range(4):
            journal.append(1, b"x")
        assert scan(path).n_records == 4
        journal.close()

    def test_byte_budget_triggers_flush(self, tmp_path, registry):
        path = tmp_path / "j.wal"
        journal = JournalWriter(
            path, flush_records=1000, flush_bytes=64, registry=registry
        )
        journal.append(1, b"y" * 100)
        assert scan(path).n_records == 1
        journal.close()

    def test_metrics_account_flushed_bytes(self, tmp_path, registry):
        path = write_records(tmp_path / "j.wal", [(1, b"abc")], registry)
        flushed = registry.counter("store.journal_bytes", "").value()
        assert flushed == path.stat().st_size - HEADER_SIZE

    def test_kind_must_fit_one_byte(self, tmp_path, registry):
        journal = JournalWriter(tmp_path / "j.wal", registry=registry)
        with pytest.raises(ValueError):
            journal.append(256, b"")
        journal.close()


class TestRecovery:
    def test_torn_tail_is_dropped_on_reopen(self, tmp_path, registry):
        path = write_records(tmp_path / "j.wal", [(1, b"keep")], registry)
        good_size = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(struct.pack("<II", 100, 0) + b"only-part")
        assert scan(path).torn
        reopened = JournalWriter(path, registry=registry)
        reopened.close()
        assert path.stat().st_size == good_size
        assert [(r.kind, r.body) for r in iter_records(path)] == [(1, b"keep")]
        assert registry.counter("store.journal_truncated_bytes", "").value() > 0

    def test_corrupt_crc_ends_valid_prefix(self, tmp_path, registry):
        path = write_records(tmp_path / "j.wal", [(1, b"aaaa"), (2, b"bbbb")], registry)
        first_end = next(iter_records(path)).end_offset
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a byte in the last record's body
        path.write_bytes(bytes(data))
        result = scan(path)
        assert result.n_records == 1
        assert result.valid_end == first_end

    def test_corrupt_first_record_loses_everything(self, tmp_path, registry):
        path = write_records(tmp_path / "j.wal", [(1, b"aaaa"), (2, b"bbbb")], registry)
        data = bytearray(path.read_bytes())
        data[HEADER_SIZE + 8] ^= 0xFF  # first payload byte of record one
        path.write_bytes(bytes(data))
        result = scan(path)
        assert result.n_records == 0
        assert result.valid_end == HEADER_SIZE

    def test_appends_after_recovery_extend_the_good_prefix(self, tmp_path, registry):
        path = write_records(tmp_path / "j.wal", [(1, b"old")], registry)
        with open(path, "ab") as handle:
            handle.write(b"\xff" * 3)  # garbage shorter than a header
        with JournalWriter(path, registry=registry) as journal:
            journal.append(2, b"new")
        assert [(r.kind, r.body) for r in iter_records(path)] == [
            (1, b"old"),
            (2, b"new"),
        ]


class TestTruncateTo:
    def test_rolls_back_to_offset(self, tmp_path, registry):
        path = write_records(tmp_path / "j.wal", [(1, b"a"), (2, b"b")], registry)
        first_end = next(iter_records(path)).end_offset
        journal = JournalWriter(path, registry=registry)
        journal.truncate_to(first_end)
        journal.close()
        assert [(r.kind, r.body) for r in iter_records(path)] == [(1, b"a")]

    def test_illegal_after_append(self, tmp_path, registry):
        journal = JournalWriter(tmp_path / "j.wal", registry=registry)
        journal.append(1, b"x")
        with pytest.raises(JournalError):
            journal.truncate_to(HEADER_SIZE)
        journal.close()

    def test_offset_must_be_in_range(self, tmp_path, registry):
        journal = JournalWriter(tmp_path / "j.wal", registry=registry)
        with pytest.raises(ValueError):
            journal.truncate_to(HEADER_SIZE - 1)
        with pytest.raises(ValueError):
            journal.truncate_to(journal.offset + 1)
        journal.close()
