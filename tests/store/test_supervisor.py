"""The crash supervisor: exit taxonomy, stall watchdog, chaos-to-completion.

The supervisor always drives real child processes (``python -m
repro.store resume``), so these are end-to-end tests by construction —
the kill/hang switches ride in ``child_args`` exactly the way the CI
chaos job arms them.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.faults import get_disk_scenario, get_scenario
from repro.obs.metrics import Registry
from repro.store.campaign import (
    ARCHIVE_DIR,
    CampaignConfig,
    CrawlCampaign,
    dataset_diff,
)
from repro.store.doctor import LOSS_MANIFEST_NAME, fsck
from repro.store.exitcodes import (
    EXIT_CORRUPT,
    EXIT_OK,
    EXIT_RESUMABLE,
    EXIT_UNRECOVERABLE,
    EXIT_USAGE,
    classify,
)
from repro.store.supervisor import (
    SUPERVISE_REPORT_NAME,
    CampaignSupervisor,
    SupervisorConfig,
)

SRC_DIR = Path(__file__).resolve().parents[2] / "src"

#: Small, fast campaign shape shared by every supervised run here.
BASE = dict(
    n_users=500,
    seed=17,
    n_machines=4,
    checkpoint_every_pages=40,
    shard_edges=512,
)
#: Tight retry/breaker knobs so injected network chaos doesn't stretch
#: the virtual clock (mirrors the CLI's chaos defaults).
RESILIENCE = {"initial_backoff": 0.02, "max_backoff": 0.5, "breaker_cooldown": 0.25}

FAST = dict(backoff_base=0.01, backoff_cap=0.05, poll_interval=0.1)


@pytest.fixture(autouse=True)
def _child_pythonpath(monkeypatch):
    # The children are real subprocesses; they must import repro the
    # same way this test run does.
    monkeypatch.setenv("PYTHONPATH", str(SRC_DIR))


class TestExitCodeTaxonomy:
    @pytest.mark.parametrize(
        ("code", "word"),
        [
            (EXIT_OK, "ok"),
            (EXIT_RESUMABLE, "resumable"),
            (EXIT_CORRUPT, "corrupt"),
            (EXIT_UNRECOVERABLE, "unrecoverable"),
            (EXIT_USAGE, "fatal"),
            (1, "fatal"),
            (-9, "killed"),   # SIGKILL as Popen reports it
            (137, "killed"),  # SIGKILL as a shell reports it
        ],
    )
    def test_classify(self, code, word):
        assert classify(code) == word


class TestSupervisedCompletion:
    def test_clean_run_completes_first_try(self, tmp_path):
        camp = tmp_path / "camp"
        CrawlCampaign(camp, CampaignConfig(**BASE))
        registry = Registry()
        result = CampaignSupervisor(
            camp, SupervisorConfig(**FAST), registry=registry
        ).run()
        assert result.completed
        assert result.restarts == 0
        assert [a["outcome"] for a in result.attempts] == ["ok"]
        assert result.final_fsck is not None and result.final_fsck.status == "clean"

        report = json.loads((camp / SUPERVISE_REPORT_NAME).read_text())
        assert report["schema"] == 1
        assert report["outcome"] == "complete"
        snap = {m["name"] for m in registry.snapshot()["metrics"]}
        assert "supervisor.spawns" in snap

    def test_chaos_supervised_to_bit_identical_dataset(self, tmp_path):
        """The headline guarantee, end to end.

        Network chaos + a SIGKILL every 150 pages + scripted disk rot:
        the supervisor must still finish, and the dataset must be
        bit-identical to a clean-disk run of the same crawl (disk faults
        and kills never alter crawl decisions — they only cost retries).
        """
        chaos = tmp_path / "chaos"
        CrawlCampaign(
            chaos,
            CampaignConfig(
                **BASE,
                faults=get_scenario("flaky-fleet"),
                resilience=RESILIENCE,
                disk_faults=get_disk_scenario("full-grind"),
            ),
        )
        result = CampaignSupervisor(
            chaos,
            SupervisorConfig(**FAST),
            child_args=["--kill-after-pages", "150"],
            registry=Registry(),
        ).run()
        assert result.completed, result.to_json_dict()
        assert result.restarts >= 1  # the kills actually happened
        killed = [a for a in result.attempts if a["outcome"] == "killed"]
        assert killed, "every incarnation but the last should die by SIGKILL"

        # The store survives a full read-back including the deep scrub.
        assert fsck(chaos, scrub=True, registry=Registry()).status == "clean"

        reference = tmp_path / "reference"
        ref_dataset = CrawlCampaign(
            reference,
            CampaignConfig(
                **BASE, faults=get_scenario("flaky-fleet"), resilience=RESILIENCE
            ),
        ).run(registry=Registry())
        from repro.crawler import CrawlDataset

        chaos_dataset = CrawlDataset.load(chaos / ARCHIVE_DIR)
        assert dataset_diff(chaos_dataset, ref_dataset) == []

    def test_journal_loss_halts_with_exact_manifest(self, tmp_path):
        """When the journal itself vanishes, no amount of restarting
        helps: the supervisor must stop, say ``unrecoverable``, and name
        the exact page range that is gone."""
        camp = tmp_path / "camp"
        CrawlCampaign(
            camp,
            CampaignConfig(**BASE, disk_faults=get_disk_scenario("journal-vanishes")),
        )
        result = CampaignSupervisor(
            camp, SupervisorConfig(max_restarts=3, **FAST), registry=Registry()
        ).run()
        assert result.outcome == "unrecoverable"
        assert not result.completed
        assert result.final_fsck is not None
        lost = result.final_fsck.lost_page_range
        assert lost is not None and lost[0] == 1 and lost[1] >= 1

        manifest = json.loads((camp / LOSS_MANIFEST_NAME).read_text())
        assert manifest["lost_page_range"] == lost
        assert manifest["lost_pages"] == lost[1] - lost[0] + 1
        report = json.loads((camp / SUPERVISE_REPORT_NAME).read_text())
        assert report["outcome"] == "unrecoverable"

    def test_stalled_child_is_detected_and_killed(self, tmp_path):
        camp = tmp_path / "camp"
        CrawlCampaign(camp, CampaignConfig(**BASE))
        registry = Registry()
        result = CampaignSupervisor(
            camp,
            SupervisorConfig(max_restarts=0, heartbeat_timeout=3.0, **FAST),
            child_args=["--hang-after-pages", "50"],
            registry=registry,
        ).run()
        assert result.outcome == "gave-up"
        assert [a["outcome"] for a in result.attempts] == ["stalled"]
        stalls = registry.counter(
            "supervisor.stalls", "Children SIGKILL'd for a stale heartbeat"
        )
        assert stalls.value() == 1
