"""Tests for power-law fitting and sampling."""

import numpy as np
import pytest

from repro.graph.degree import EmpiricalCCDF
from repro.graph.powerlaw import (
    fit_powerlaw,
    fit_powerlaw_ccdf,
    sample_powerlaw_degrees,
)


def exact_powerlaw_ccdf(alpha: float, c: float = 1.0, n: int = 50) -> EmpiricalCCDF:
    x = np.unique(np.logspace(0, 4, n))
    p = np.minimum(1.0, c * np.power(x, -alpha))
    return EmpiricalCCDF(x, p)


class TestFit:
    @pytest.mark.parametrize("alpha", [0.8, 1.2, 1.3, 2.0])
    def test_recovers_exact_exponent(self, alpha):
        fit = fit_powerlaw_ccdf(exact_powerlaw_ccdf(alpha))
        assert fit.alpha == pytest.approx(alpha, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_prefactor_recovered(self):
        fit = fit_powerlaw_ccdf(exact_powerlaw_ccdf(1.5, c=1.0))
        assert fit.c == pytest.approx(1.0, rel=1e-6)

    def test_predict_ccdf(self):
        fit = fit_powerlaw_ccdf(exact_powerlaw_ccdf(1.0))
        assert fit.predict_ccdf([10.0])[0] == pytest.approx(0.1, rel=1e-6)

    def test_window_excludes_points(self):
        curve = exact_powerlaw_ccdf(1.5)
        fit = fit_powerlaw_ccdf(curve, x_min=10.0, x_max=1000.0)
        assert fit.x_min >= 10.0
        assert fit.x_max <= 1000.0
        assert fit.n_points < len(curve.x)

    def test_too_few_points_rejected(self):
        curve = EmpiricalCCDF(np.array([1.0, 2.0]), np.array([1.0, 0.5]))
        with pytest.raises(ValueError):
            fit_powerlaw_ccdf(curve)

    def test_fit_on_sampled_data(self, rng):
        degrees = sample_powerlaw_degrees(rng, 200_000, alpha=1.3)
        fit = fit_powerlaw(degrees, x_min=1)
        assert fit.alpha == pytest.approx(1.3, abs=0.15)
        assert fit.r_squared > 0.97


class TestSampling:
    def test_min_respected(self, rng):
        degrees = sample_powerlaw_degrees(rng, 10_000, alpha=1.2, x_min=3)
        assert degrees.min() >= 3

    def test_cap_respected(self, rng):
        degrees = sample_powerlaw_degrees(rng, 10_000, alpha=0.8, x_max=100)
        assert degrees.max() <= 100

    def test_invalid_alpha(self, rng):
        with pytest.raises(ValueError):
            sample_powerlaw_degrees(rng, 10, alpha=0.0)

    def test_heavy_tail_present(self, rng):
        degrees = sample_powerlaw_degrees(rng, 100_000, alpha=1.0)
        # With alpha=1 roughly 1% of samples exceed 100 x_min.
        assert (degrees >= 100).mean() == pytest.approx(0.01, abs=0.005)

    def test_deterministic_under_seed(self):
        a = sample_powerlaw_degrees(np.random.default_rng(5), 100, alpha=1.2)
        b = sample_powerlaw_degrees(np.random.default_rng(5), 100, alpha=1.2)
        assert np.array_equal(a, b)


class TestFitProperties:
    """Property tests: the regression is exact on exact curves."""

    from hypothesis import given, settings, strategies as st

    # c <= 1 keeps the curve un-clamped over x >= 1 (a CCDF cannot
    # exceed 1, and exact_powerlaw_ccdf clips it).
    @given(st.floats(min_value=0.3, max_value=3.0),
           st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_recovers_arbitrary_exponent_and_prefactor(self, alpha, c):
        fit = fit_powerlaw_ccdf(exact_powerlaw_ccdf(alpha, c=c))
        assert fit.alpha == pytest.approx(alpha, rel=1e-6)
        assert fit.c == pytest.approx(c, rel=1e-5)
        assert fit.r_squared == pytest.approx(1.0)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_fit_bounded_on_random_samples(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        values = rng.integers(1, 500, size=200)
        fit = fit_powerlaw(values)
        assert np.isfinite(fit.alpha)
        assert -1.0 <= fit.r_squared <= 1.0
