"""Tests for reciprocity metrics, cross-checked against networkx."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.reciprocity import (
    global_reciprocity,
    reciprocated_edge_mask,
    reciprocity_cdf_input,
    relation_reciprocity,
)


def random_digraph_edges(seed: int, n: int = 30, p: float = 0.1):
    rng = np.random.default_rng(seed)
    return [
        (i, j)
        for i in range(n)
        for j in range(n)
        if i != j and rng.random() < p
    ]


class TestGlobalReciprocity:
    def test_fully_mutual(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 0), (1, 2), (2, 1)])
        assert global_reciprocity(graph) == 1.0

    def test_no_reciprocity(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        assert global_reciprocity(graph) == 0.0

    def test_mixed(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 0), (0, 2)])
        assert global_reciprocity(graph) == pytest.approx(2 / 3)

    def test_empty_graph(self):
        assert global_reciprocity(CSRGraph.from_edges([])) == 0.0

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_matches_networkx(self, seed):
        edges = random_digraph_edges(seed)
        ours = global_reciprocity(CSRGraph.from_edges(edges))
        theirs = nx.reciprocity(nx.DiGraph(edges))
        assert ours == pytest.approx(theirs)


class TestEdgeMask:
    def test_mask_marks_reciprocated_edges(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 0), (0, 2)])
        mask = reciprocated_edge_mask(graph)
        assert mask.sum() == 2
        assert len(mask) == 3


class TestRelationReciprocity:
    def test_equation_one(self):
        # RR(u) = |OS(u) ∩ IS(u)| / |OS(u)|
        graph = CSRGraph.from_edges([(0, 1), (0, 2), (1, 0)])
        rr = relation_reciprocity(graph)
        assert rr[0] == pytest.approx(0.5)  # follows {1,2}, only 1 follows back
        assert rr[1] == pytest.approx(1.0)
        assert np.isnan(rr[2])  # out-degree 0: undefined

    def test_subset_of_nodes(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 0)])
        rr = relation_reciprocity(graph, nodes=np.array([1]))
        assert rr.tolist() == [1.0]

    def test_celebrity_pattern(self):
        # A hub followed by many, following none back except one friend.
        edges = [(i, 0) for i in range(1, 10)] + [(0, 1), (1, 0)]
        graph = CSRGraph.from_edges(list(set(edges)))
        rr = relation_reciprocity(graph)
        hub = graph.compact_index(0)
        assert rr[hub] == pytest.approx(1.0)  # follows only the mutual friend
        follower = graph.compact_index(5)
        assert rr[follower] == pytest.approx(0.0)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_rr_bounded(self, seed):
        edges = random_digraph_edges(seed, n=15, p=0.2)
        if not edges:
            return
        rr = relation_reciprocity(CSRGraph.from_edges(edges))
        defined = rr[~np.isnan(rr)]
        assert np.all(defined >= 0.0)
        assert np.all(defined <= 1.0)

    def test_cdf_input_drops_nan(self):
        graph = CSRGraph.from_edges([(0, 1)])
        values = reciprocity_cdf_input(graph)
        assert len(values) == 1  # node 1 has out-degree 0
        assert not np.isnan(values).any()
