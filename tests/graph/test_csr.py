"""Tests for the CSR graph representation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.csr import CSRGraph


def edges_strategy(max_nodes: int = 20, max_edges: int = 60):
    node = st.integers(min_value=0, max_value=max_nodes - 1)
    return st.lists(
        st.tuples(node, node).filter(lambda e: e[0] != e[1]),
        max_size=max_edges,
    )


class TestConstruction:
    def test_empty(self):
        graph = CSRGraph.from_edges([])
        assert graph.n == 0
        assert graph.n_edges == 0

    def test_simple_triangle(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        assert graph.n == 3
        assert graph.n_edges == 3

    def test_duplicate_edges_collapsed(self):
        graph = CSRGraph.from_edges([(0, 1), (0, 1), (0, 1)])
        assert graph.n_edges == 1

    def test_non_contiguous_ids_relabeled(self):
        graph = CSRGraph.from_edges([(100, 5), (5, 70)])
        assert graph.n == 3
        assert sorted(graph.node_ids.tolist()) == [5, 70, 100]

    def test_isolated_nodes_via_node_ids(self):
        graph = CSRGraph.from_edge_arrays(
            np.array([0]), np.array([1]), node_ids=np.array([0, 1, 9])
        )
        assert graph.n == 3
        idx = graph.compact_index(9)
        assert len(graph.out_neighbors(idx)) == 0

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edge_arrays(np.array([0, 1]), np.array([1]))


class TestAccessors:
    @pytest.fixture
    def graph(self) -> CSRGraph:
        return CSRGraph.from_edges([(0, 2), (0, 1), (1, 2), (3, 0)])

    def test_out_neighbors_sorted(self, graph):
        assert graph.out_neighbors(0).tolist() == [1, 2]

    def test_in_neighbors_sorted(self, graph):
        assert graph.in_neighbors(2).tolist() == [0, 1]

    def test_degrees(self, graph):
        assert graph.out_degrees().tolist() == [2, 1, 0, 1]
        assert graph.in_degrees().tolist() == [1, 1, 2, 0]

    def test_has_edge(self, graph):
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)

    def test_compact_index_roundtrip(self, graph):
        for position, node_id in enumerate(graph.node_ids):
            assert graph.compact_index(int(node_id)) == position

    def test_compact_index_unknown(self, graph):
        with pytest.raises(KeyError):
            graph.compact_index(12345)

    def test_undirected_neighbors_union(self, graph):
        assert graph.undirected_neighbors(0).tolist() == [1, 2, 3]


class TestProperties:
    @given(edges_strategy())
    @settings(max_examples=60, deadline=None)
    def test_degree_sums_equal_edge_count(self, edges):
        graph = CSRGraph.from_edges(edges)
        unique_edges = len(set(edges))
        assert graph.n_edges == unique_edges
        assert int(graph.out_degrees().sum()) == unique_edges
        assert int(graph.in_degrees().sum()) == unique_edges

    @given(edges_strategy())
    @settings(max_examples=60, deadline=None)
    def test_forward_and_reverse_agree(self, edges):
        graph = CSRGraph.from_edges(edges)
        forward = {
            (i, int(j))
            for i in range(graph.n)
            for j in graph.out_neighbors(i)
        }
        reverse = {
            (int(j), i)
            for i in range(graph.n)
            for j in graph.in_neighbors(i)
        }
        assert forward == reverse

    @given(edges_strategy())
    @settings(max_examples=60, deadline=None)
    def test_adjacency_rows_sorted_unique(self, edges):
        graph = CSRGraph.from_edges(edges)
        for i in range(graph.n):
            row = graph.out_neighbors(i)
            assert np.all(np.diff(row) > 0) if len(row) > 1 else True
