"""Tests for the Table 4 graph summary."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.paths import sampled_path_lengths, UNDIRECTED
from repro.graph.stats import summarize_graph


@pytest.fixture
def ring() -> CSRGraph:
    n = 12
    return CSRGraph.from_edges([(i, (i + 1) % n) for i in range(n)])


class TestSummarize:
    def test_ring_summary(self, ring, rng):
        summary = summarize_graph(ring, rng, path_samples=12)
        assert summary.n_nodes == 12
        assert summary.n_edges == 12
        assert summary.mean_in_degree == pytest.approx(1.0)
        assert summary.reciprocity == 0.0
        assert summary.n_sccs == 1
        assert summary.giant_scc_fraction == pytest.approx(1.0)
        # Directed ring: mean distance over pairs = n/2 = 6.
        assert summary.avg_path_length == pytest.approx(6.0, abs=0.01)
        assert summary.diameter == 11
        assert summary.undirected_diameter == 6

    def test_mutual_pair(self, rng):
        graph = CSRGraph.from_edges([(0, 1), (1, 0)])
        summary = summarize_graph(graph, rng, path_samples=2)
        assert summary.reciprocity == 1.0
        assert summary.avg_path_length == pytest.approx(1.0)

    def test_precomputed_paths_reused(self, ring):
        rng1 = np.random.default_rng(0)
        directed = sampled_path_lengths(ring, rng1, initial_k=12, max_k=12)
        undirected = sampled_path_lengths(
            ring, rng1, initial_k=12, max_k=12, mode=UNDIRECTED
        )
        summary = summarize_graph(
            ring,
            np.random.default_rng(1),
            precomputed_directed=directed,
            precomputed_undirected=undirected,
        )
        assert summary.avg_path_length == pytest.approx(directed.mean)
        assert summary.path_length_mode == directed.mode
