"""Tests for the triad census, cross-checked against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.triads import (
    transitivity_signature,
    TRIAD_TYPES,
    triad_census_exact,
    triad_census_sampled,
)


def random_edges(seed: int, n: int = 12, p: float = 0.25):
    rng = np.random.default_rng(seed)
    return [
        (i, j) for i in range(n) for j in range(n) if i != j and rng.random() < p
    ]


class TestExactCensus:
    def test_sixteen_types(self):
        assert len(TRIAD_TYPES) == 16

    def test_empty_graph(self):
        graph = CSRGraph.from_edge_arrays(
            np.empty(0, np.int64), np.empty(0, np.int64),
            node_ids=np.arange(4),
        )
        census = triad_census_exact(graph)
        assert census["003"] == 4  # C(4,3) empty triples
        assert sum(census.values()) == 4

    def test_transitive_triangle(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        assert triad_census_exact(graph)["030T"] == 1

    def test_cyclic_triangle(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        assert triad_census_exact(graph)["030C"] == 1

    def test_complete_mutual_triangle(self):
        edges = [(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)]
        assert triad_census_exact(CSRGraph.from_edges(edges))["300"] == 1

    def test_single_mutual_dyad(self):
        graph = CSRGraph.from_edge_arrays(
            np.array([0, 1]), np.array([1, 0]), node_ids=np.arange(3)
        )
        assert triad_census_exact(graph)["102"] == 1

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_networkx(self, seed):
        edges = random_edges(seed)
        if not edges:
            return
        graph = CSRGraph.from_edges(edges)
        mapped = [(graph.compact_index(u), graph.compact_index(v)) for u, v in edges]
        nx_graph = nx.DiGraph(mapped)
        nx_graph.add_nodes_from(range(graph.n))
        theirs = nx.triadic_census(nx_graph)
        ours = triad_census_exact(graph)
        assert ours == {k: theirs[k] for k in TRIAD_TYPES}

    def test_total_is_n_choose_3(self):
        edges = random_edges(3, n=10)
        graph = CSRGraph.from_edges(edges)
        census = triad_census_exact(graph)
        n = graph.n
        assert sum(census.values()) == n * (n - 1) * (n - 2) // 6


class TestSampledCensus:
    def test_counts_sum_to_samples_or_less(self, rng):
        graph = CSRGraph.from_edges(random_edges(5, n=30))
        census = triad_census_sampled(graph, rng, n_samples=2_000)
        assert 0 < sum(census.values()) <= 2_000

    def test_tiny_graph(self, rng):
        graph = CSRGraph.from_edges([(0, 1)])
        census = triad_census_sampled(graph, rng, n_samples=10)
        assert sum(census.values()) == 0

    def test_transitive_graph_shows_closure(self, rng):
        # A clique of mutual edges: every connected triple is type 300.
        n = 12
        edges = [(i, j) for i in range(n) for j in range(n) if i != j]
        graph = CSRGraph.from_edges(edges)
        census = triad_census_sampled(graph, rng, n_samples=500)
        assert census["300"] == sum(census.values())


class TestTransitivitySignature:
    def test_fully_closed(self):
        census = {name: 0 for name in TRIAD_TYPES}
        census["300"] = 10
        assert transitivity_signature(census) == 1.0

    def test_no_connected_triads(self):
        census = {name: 0 for name in TRIAD_TYPES}
        census["003"] = 5
        assert np.isnan(transitivity_signature(census))

    def test_gplus_more_transitive_than_random(self, study_results, rng):
        census = triad_census_sampled(
            study_results.graph, rng, n_samples=10_000
        )
        assert transitivity_signature(census) > 0.02
