"""Tests for the BFS engine: sharding, shared memory, determinism.

The end-to-end guarantee under test: any worker count and batch size
produce bit-identical results — the in-process fallback, a multi-process
pool over shared-memory CSR views, and the retained sequential reference
all agree exactly on a seeded synthetic world.
"""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.parallel import BFSEngine, SharedCSR, _SharedCSRView
from repro.graph.paths import (
    DIRECTED,
    estimate_diameter,
    sampled_path_lengths,
    sampled_path_lengths_sequential,
    UNDIRECTED,
)
from repro.obs.metrics import Registry
from repro.synth.world import build_world, WorldConfig


@pytest.fixture(scope="module")
def world_graph() -> CSRGraph:
    world = build_world(WorldConfig(n_users=600, seed=23))
    return CSRGraph.from_edge_arrays(world.graph.sources, world.graph.targets)


class TestSharedCSR:
    def test_view_roundtrips_arrays(self, world_graph):
        shared = SharedCSR(world_graph)
        try:
            view = _SharedCSRView(shared.descriptor)
            assert view.n == world_graph.n
            for name in ("indptr", "indices", "rindptr", "rindices"):
                np.testing.assert_array_equal(
                    getattr(view, name), getattr(world_graph, name)
                )
        finally:
            shared.unlink()

    def test_unlink_idempotent(self, world_graph):
        shared = SharedCSR(world_graph)
        shared.unlink()
        shared.unlink()


class TestBFSEngine:
    def test_validation(self, world_graph):
        with pytest.raises(ValueError):
            BFSEngine(world_graph, n_workers=0)
        with pytest.raises(ValueError):
            BFSEngine(world_graph, batch_size=0)

    @pytest.mark.parametrize("mode", [DIRECTED, UNDIRECTED])
    def test_worker_count_invariance(self, world_graph, mode):
        """n_workers=2 over shared memory == the in-process fallback,
        bit for bit, on every engine operation."""
        rng = np.random.default_rng(5)
        sources = rng.integers(0, world_graph.n, size=150).astype(np.int64)
        with BFSEngine(world_graph, n_workers=1, batch_size=32) as solo, \
                BFSEngine(world_graph, n_workers=2, batch_size=32) as duo:
            np.testing.assert_array_equal(
                solo.hop_counts(sources, mode), duo.hop_counts(sources, mode)
            )
            ecc1, far1 = solo.eccentricities(sources, mode)
            ecc2, far2 = duo.eccentricities(sources, mode)
            np.testing.assert_array_equal(ecc1, ecc2)
            np.testing.assert_array_equal(far1, far2)
            np.testing.assert_array_equal(
                solo.distances(sources[:40], mode), duo.distances(sources[:40], mode)
            )

    def test_batch_size_invariance(self, world_graph):
        sources = np.arange(0, world_graph.n, 3, dtype=np.int64)
        with BFSEngine(world_graph, batch_size=7) as small, \
                BFSEngine(world_graph, batch_size=128) as large:
            np.testing.assert_array_equal(
                small.hop_counts(sources), large.hop_counts(sources)
            )

    def test_empty_sources(self, world_graph):
        with BFSEngine(world_graph) as engine:
            assert engine.hop_counts([]).tolist() == [0]
            ecc, far = engine.eccentricities([])
            assert len(ecc) == 0 and len(far) == 0
            assert engine.distances([]).shape == (0, world_graph.n)

    def test_metrics_published(self, world_graph):
        registry = Registry()
        with BFSEngine(world_graph, n_workers=1, registry=registry) as engine:
            engine.hop_counts(np.arange(10, dtype=np.int64))
        counter = registry.counter("graph.bfs_sources", labels=("mode",))
        assert counter.value(mode=DIRECTED) == 10
        workers = registry.gauge("graph.parallel_workers")
        assert workers.value() == 1.0

    def test_close_is_idempotent(self, world_graph):
        engine = BFSEngine(world_graph, n_workers=2, batch_size=8)
        engine.hop_counts(np.arange(30, dtype=np.int64))
        engine.close()
        engine.close()


class TestEndToEnd:
    """The ISSUE acceptance check: parallel == in-process == sequential."""

    @pytest.mark.parametrize("mode", [DIRECTED, UNDIRECTED])
    def test_fig5_distribution_identical_across_workers(self, world_graph, mode):
        kwargs = dict(initial_k=60, max_k=240, growth_step=60)
        sequential = sampled_path_lengths_sequential(
            world_graph, np.random.default_rng(42), mode=mode, **kwargs
        )
        with BFSEngine(world_graph, n_workers=1, batch_size=32) as engine:
            solo = sampled_path_lengths(
                world_graph, np.random.default_rng(42), mode=mode,
                engine=engine, **kwargs,
            )
        with BFSEngine(world_graph, n_workers=2, batch_size=32) as engine:
            duo = sampled_path_lengths(
                world_graph, np.random.default_rng(42), mode=mode,
                engine=engine, **kwargs,
            )
        assert sequential.n_sources == solo.n_sources == duo.n_sources
        np.testing.assert_array_equal(sequential.counts, solo.counts)
        np.testing.assert_array_equal(solo.counts, duo.counts)

    def test_diameter_identical_across_workers(self, world_graph):
        estimates = []
        for n_workers in (1, 2):
            with BFSEngine(world_graph, n_workers=n_workers, batch_size=8) as eng:
                estimates.append(
                    estimate_diameter(
                        world_graph, np.random.default_rng(9), n_sweeps=24,
                        engine=eng,
                    )
                )
        assert estimates[0] == estimates[1]
