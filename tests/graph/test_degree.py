"""Tests for CCDF/CDF machinery and degree distributions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.degree import ccdf, cdf, degree_distributions, EmpiricalCCDF

samples = st.lists(
    st.integers(min_value=0, max_value=1000), min_size=1, max_size=200
)


class TestCCDF:
    def test_simple(self):
        curve = ccdf([1, 1, 2, 3])
        assert curve.x.tolist() == [1, 2, 3]
        assert curve.p.tolist() == [1.0, 0.5, 0.25]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ccdf([])

    def test_evaluate_on_support(self):
        curve = ccdf([1, 2, 2, 5])
        assert curve.evaluate(2)[0] == pytest.approx(0.75)
        assert curve.evaluate(5)[0] == pytest.approx(0.25)

    def test_evaluate_between_and_beyond(self):
        curve = ccdf([1, 2, 2, 5])
        assert curve.evaluate(3)[0] == pytest.approx(0.25)  # P(X>=3)=P(X=5)
        assert curve.evaluate(0)[0] == pytest.approx(1.0)
        assert curve.evaluate(10)[0] == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalCCDF(np.array([1.0, 2.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            EmpiricalCCDF(np.array([2.0, 1.0]), np.array([1.0, 0.5]))

    @given(samples)
    @settings(max_examples=80, deadline=None)
    def test_monotone_nonincreasing_and_starts_at_one(self, values):
        curve = ccdf(values)
        assert curve.p[0] == pytest.approx(1.0)
        assert np.all(np.diff(curve.p) <= 1e-12)
        assert curve.p[-1] == pytest.approx(
            values.count(max(values)) / len(values)
        )

    @given(samples)
    @settings(max_examples=80, deadline=None)
    def test_ccdf_matches_bruteforce(self, values):
        curve = ccdf(values)
        arr = np.array(values)
        for x, p in zip(curve.x, curve.p):
            assert p == pytest.approx((arr >= x).mean())


class TestCDF:
    def test_simple(self):
        x, p = cdf([1, 1, 2, 3])
        assert x.tolist() == [1, 2, 3]
        assert p.tolist() == [0.5, 0.75, 1.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf([])

    @given(samples)
    @settings(max_examples=80, deadline=None)
    def test_cdf_plus_ccdf_identity(self, values):
        """P(X <= x) + P(X >= x) = 1 + P(X = x) at every support point."""
        x_cdf, p_cdf = cdf(values)
        curve = ccdf(values)
        arr = np.array(values, dtype=float)
        for x, below in zip(x_cdf, p_cdf):
            at = (arr == x).mean()
            above = curve.evaluate(x)[0]
            assert below + above == pytest.approx(1.0 + at)


class TestDegreeDistributions:
    def test_star_graph(self):
        # 0 -> 1..4: out-degree 4 for hub, in-degree 1 for leaves.
        graph = CSRGraph.from_edges([(0, i) for i in range(1, 5)])
        dist = degree_distributions(graph)
        assert dist.out_degrees.tolist() == [4, 0, 0, 0, 0]
        assert dist.in_degrees.tolist() == [0, 1, 1, 1, 1]
        assert dist.mean_out_degree == pytest.approx(0.8)
        assert dist.mean_in_degree == pytest.approx(0.8)

    def test_mean_degrees_equal(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (2, 0), (0, 2)])
        dist = degree_distributions(graph)
        assert dist.mean_in_degree == pytest.approx(dist.mean_out_degree)
