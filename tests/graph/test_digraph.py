"""Tests for the mutable DiGraph container."""

import numpy as np
import pytest

from repro.graph.digraph import DiGraph


@pytest.fixture
def triangle() -> DiGraph:
    return DiGraph.from_edges([(0, 1), (1, 2), (2, 0)])


class TestConstruction:
    def test_empty(self):
        graph = DiGraph()
        assert graph.n_nodes == 0
        assert graph.n_edges == 0

    def test_from_edges(self, triangle):
        assert triangle.n_nodes == 3
        assert triangle.n_edges == 3

    def test_add_node_idempotent(self):
        graph = DiGraph()
        graph.add_node(5)
        graph.add_node(5)
        assert graph.n_nodes == 1

    def test_add_edge_creates_nodes(self):
        graph = DiGraph()
        graph.add_edge(3, 7)
        assert 3 in graph and 7 in graph

    def test_duplicate_edge_ignored(self):
        graph = DiGraph()
        assert graph.add_edge(0, 1) is True
        assert graph.add_edge(0, 1) is False
        assert graph.n_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            DiGraph().add_edge(1, 1)


class TestQueries:
    def test_neighbors(self, triangle):
        assert triangle.out_neighbors(0) == {1}
        assert triangle.in_neighbors(0) == {2}

    def test_degrees(self, triangle):
        assert triangle.out_degree(0) == 1
        assert triangle.in_degree(0) == 1

    def test_has_edge(self, triangle):
        assert triangle.has_edge(0, 1)
        assert not triangle.has_edge(1, 0)
        assert not triangle.has_edge(0, 99)

    def test_edges_iterates_all(self, triangle):
        assert sorted(triangle.edges()) == [(0, 1), (1, 2), (2, 0)]

    def test_len_is_node_count(self, triangle):
        assert len(triangle) == 3


class TestMutation:
    def test_remove_edge(self, triangle):
        triangle.remove_edge(0, 1)
        assert not triangle.has_edge(0, 1)
        assert triangle.n_edges == 2
        assert triangle.in_neighbors(1) == set()

    def test_remove_missing_edge_raises(self, triangle):
        with pytest.raises(KeyError):
            triangle.remove_edge(1, 0)


class TestExport:
    def test_edge_arrays_roundtrip(self, triangle):
        sources, targets = triangle.edge_arrays()
        assert len(sources) == 3
        rebuilt = set(zip(sources.tolist(), targets.tolist()))
        assert rebuilt == {(0, 1), (1, 2), (2, 0)}

    def test_to_csr_preserves_structure(self, triangle):
        csr = triangle.to_csr()
        assert csr.n == 3
        assert csr.n_edges == 3
        assert np.array_equal(csr.out_neighbors(0), [1])

    def test_to_csr_keeps_isolated_nodes(self):
        graph = DiGraph.from_edges([(0, 1)])
        graph.add_node(42)
        csr = graph.to_csr()
        assert csr.n == 3
        assert 42 in csr.node_ids
