"""Tests for BFS distances, path-length sampling and diameter estimation."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.paths import (
    bfs_distances,
    DIRECTED,
    estimate_diameter,
    PathLengthDistribution,
    sampled_path_lengths,
    UNDIRECTED,
)


def random_edges(seed: int, n: int = 40, m: int = 100):
    rng = np.random.default_rng(seed)
    pairs = {(int(rng.integers(0, n)), int(rng.integers(0, n))) for _ in range(m)}
    return [(u, v) for u, v in pairs if u != v]


class TestBFS:
    def test_path_graph(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3)])
        assert bfs_distances(graph, 0).tolist() == [0, 1, 2, 3]

    def test_unreachable_marked_minus_one(self):
        graph = CSRGraph.from_edges([(0, 1), (2, 3)])
        dist = bfs_distances(graph, 0)
        assert dist[graph.compact_index(2)] == -1

    def test_direction_respected(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2)])
        assert bfs_distances(graph, 2, mode=DIRECTED).tolist() == [-1, -1, 0]

    def test_undirected_ignores_direction(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2)])
        assert bfs_distances(graph, 2, mode=UNDIRECTED).tolist() == [2, 1, 0]

    def test_invalid_mode(self):
        graph = CSRGraph.from_edges([(0, 1)])
        with pytest.raises(ValueError):
            bfs_distances(graph, 0, mode="sideways")

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_networkx(self, seed):
        edges = random_edges(seed)
        if not edges:
            return
        graph = CSRGraph.from_edges(edges)
        mapped = [(graph.compact_index(u), graph.compact_index(v)) for u, v in edges]
        nx_graph = nx.DiGraph(mapped)
        nx_graph.add_nodes_from(range(graph.n))
        for source in range(0, graph.n, 7):
            ours = bfs_distances(graph, source)
            theirs = nx.single_source_shortest_path_length(nx_graph, source)
            for node in range(graph.n):
                expected = theirs.get(node, -1)
                assert ours[node] == expected

    def test_undirected_matches_networkx(self):
        edges = random_edges(3)
        graph = CSRGraph.from_edges(edges)
        mapped = [(graph.compact_index(u), graph.compact_index(v)) for u, v in edges]
        nx_graph = nx.Graph(mapped)
        nx_graph.add_nodes_from(range(graph.n))
        ours = bfs_distances(graph, 0, mode=UNDIRECTED)
        theirs = nx.single_source_shortest_path_length(nx_graph, 0)
        for node in range(graph.n):
            assert ours[node] == theirs.get(node, -1)


class TestDistribution:
    def test_counts_and_moments(self):
        dist = PathLengthDistribution(
            counts=np.array([0, 2, 4, 2]), n_sources=1
        )
        assert dist.mean == pytest.approx(2.0)
        assert dist.mode == 2
        assert dist.max_observed == 3
        assert dist.probabilities().sum() == pytest.approx(1.0)

    def test_empty_distribution(self):
        dist = PathLengthDistribution(counts=np.zeros(1, dtype=int), n_sources=0)
        assert np.isnan(dist.mean)
        assert dist.max_observed == 0

    def test_exact_on_path_graph(self, rng):
        # Directed path 0->1->2->3: from all sources, hop counts are known.
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3)])
        dist = sampled_path_lengths(graph, rng, initial_k=4, max_k=4)
        # pairs: hop1 x3, hop2 x2, hop3 x1
        assert dist.counts.tolist() == [0, 3, 2, 1]

    def test_convergence_stops_early(self, rng):
        # A clique converges instantly: all distances are 1.
        n = 30
        edges = [(i, j) for i in range(n) for j in range(n) if i != j]
        graph = CSRGraph.from_edges(edges)
        dist = sampled_path_lengths(
            graph, rng, initial_k=5, max_k=30, growth_step=5, tolerance=0.01
        )
        assert dist.n_sources < 30
        assert dist.mode == 1

    def test_empty_graph_rejected(self, rng):
        with pytest.raises(ValueError):
            sampled_path_lengths(CSRGraph.from_edges([]), rng)

    def test_undirected_mean_not_larger(self, rng):
        edges = random_edges(11, n=60, m=150)
        graph = CSRGraph.from_edges(edges)
        directed = sampled_path_lengths(graph, rng, initial_k=60, max_k=60)
        undirected = sampled_path_lengths(
            graph, rng, initial_k=60, max_k=60, mode=UNDIRECTED
        )
        assert undirected.mean <= directed.mean + 1e-9


class TestDiameter:
    def test_exact_on_path(self, rng):
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
        assert estimate_diameter(graph, rng, n_sweeps=10) == 4

    def test_lower_bound_property(self, rng):
        edges = random_edges(9, n=50, m=120)
        graph = CSRGraph.from_edges(edges)
        mapped = [(graph.compact_index(u), graph.compact_index(v)) for u, v in edges]
        nx_graph = nx.DiGraph(mapped)
        nx_graph.add_nodes_from(range(graph.n))
        true_max_ecc = 0
        for source in range(graph.n):
            lengths = nx.single_source_shortest_path_length(nx_graph, source)
            if lengths:
                true_max_ecc = max(true_max_ecc, max(lengths.values()))
        estimate = estimate_diameter(graph, rng, n_sweeps=25)
        assert estimate <= true_max_ecc
        assert estimate >= 1

    def test_empty_graph(self, rng):
        assert estimate_diameter(CSRGraph.from_edges([]), rng) == 0
