"""Tests for the directed out-neighborhood clustering coefficient."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.clustering import (
    average_clustering,
    clustering_coefficient,
    clustering_coefficients,
    sampled_clustering,
)


def brute_force_cc(edges: list[tuple[int, int]], node: int) -> float:
    """Oracle: count directed edges among out-neighbors by enumeration."""
    outs = {v for u, v in edges if u == node}
    k = len(outs)
    if k < 2:
        return float("nan")
    edge_set = set(edges)
    links = sum(1 for a in outs for b in outs if a != b and (a, b) in edge_set)
    return links / (k * (k - 1))


class TestHandGraphs:
    def test_full_directed_triangle_among_outs(self):
        # 0 -> {1, 2}; 1 <-> 2 fully connected: CC(0) = 2 / (2*1) = 1.
        graph = CSRGraph.from_edges([(0, 1), (0, 2), (1, 2), (2, 1)])
        assert clustering_coefficient(graph, 0) == pytest.approx(1.0)

    def test_one_directed_edge_among_outs(self):
        graph = CSRGraph.from_edges([(0, 1), (0, 2), (1, 2)])
        assert clustering_coefficient(graph, 0) == pytest.approx(0.5)

    def test_no_edges_among_outs(self):
        graph = CSRGraph.from_edges([(0, 1), (0, 2)])
        assert clustering_coefficient(graph, 0) == pytest.approx(0.0)

    def test_undefined_below_two_outs(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 0)])
        assert np.isnan(clustering_coefficient(graph, 0))

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_bruteforce_on_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = 15
        edges = list(
            {
                (int(rng.integers(0, n)), int(rng.integers(0, n)))
                for _ in range(60)
            }
        )
        edges = [(u, v) for u, v in edges if u != v]
        graph = CSRGraph.from_edges(edges)
        for compact in range(graph.n):
            original = int(graph.node_ids[compact])
            expected = brute_force_cc(
                [
                    (int(graph.node_ids[graph.compact_index(u)]), v)
                    for u, v in edges
                ],
                original,
            )
            # Edges use original ids == compact here only if contiguous;
            # map explicitly to be safe.
            mapped = [
                (graph.compact_index(u), graph.compact_index(v)) for u, v in edges
            ]
            expected = brute_force_cc(mapped, compact)
            actual = clustering_coefficient(graph, compact)
            if np.isnan(expected):
                assert np.isnan(actual)
            else:
                assert actual == pytest.approx(expected)


class TestBatchAndSampling:
    def test_vector_matches_scalar(self):
        graph = CSRGraph.from_edges([(0, 1), (0, 2), (1, 2), (2, 1), (1, 0)])
        values = clustering_coefficients(graph)
        for node in range(graph.n):
            scalar = clustering_coefficient(graph, node)
            if np.isnan(scalar):
                assert np.isnan(values[node])
            else:
                assert values[node] == pytest.approx(scalar)

    def test_sampled_only_eligible_nodes(self, rng):
        graph = CSRGraph.from_edges([(0, 1), (0, 2), (1, 2), (3, 0)])
        values = sampled_clustering(graph, 10, rng)
        assert len(values) == 1  # only node 0 has out-degree > 1
        assert not np.isnan(values).any()

    def test_sampled_empty_when_no_eligible(self, rng):
        graph = CSRGraph.from_edges([(0, 1), (1, 2)])
        assert len(sampled_clustering(graph, 10, rng)) == 0

    def test_sample_size_respected(self, rng):
        edges = [(i, (i + 1) % 20) for i in range(20)]
        edges += [(i, (i + 2) % 20) for i in range(20)]
        graph = CSRGraph.from_edges(edges)
        assert len(sampled_clustering(graph, 5, rng)) == 5

    def test_average(self):
        graph = CSRGraph.from_edges([(0, 1), (0, 2), (1, 2)])
        assert average_clustering(graph) == pytest.approx(0.5)

    def test_average_nan_when_undefined(self):
        graph = CSRGraph.from_edges([(0, 1)])
        assert np.isnan(average_clustering(graph))
