"""Tests for sampling helpers."""

import pytest

from repro.graph.csr import CSRGraph
from repro.graph.sampling import sample_edges, sample_node_pairs, sample_nodes


@pytest.fixture
def graph() -> CSRGraph:
    return CSRGraph.from_edges([(0, 1), (0, 2), (1, 2), (2, 3), (3, 0)])


class TestSampleNodes:
    def test_without_replacement(self, graph, rng):
        nodes = sample_nodes(graph, 3, rng)
        assert len(nodes) == 3
        assert len(set(nodes.tolist())) == 3

    def test_all_when_oversized(self, graph, rng):
        nodes = sample_nodes(graph, 100, rng)
        assert sorted(nodes.tolist()) == list(range(graph.n))


class TestSamplePairs:
    def test_no_equal_pairs(self, rng):
        u, v = sample_node_pairs(10, 500, rng)
        assert not (u == v).any()

    def test_equal_allowed_when_requested(self, rng):
        u, v = sample_node_pairs(2, 500, rng, forbid_equal=False)
        assert (u == v).any()  # overwhelmingly likely with n=2

    def test_tiny_population_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_node_pairs(1, 5, rng)

    def test_range(self, rng):
        u, v = sample_node_pairs(7, 300, rng)
        assert u.min() >= 0 and u.max() < 7
        assert v.min() >= 0 and v.max() < 7


class TestSampleEdges:
    def test_sampled_edges_exist(self, graph, rng):
        sources, targets = sample_edges(graph, 3, rng)
        assert len(sources) == 3
        for u, v in zip(sources, targets):
            assert graph.has_edge(int(u), int(v))

    def test_all_edges_when_oversized(self, graph, rng):
        sources, targets = sample_edges(graph, 100, rng)
        assert len(sources) == graph.n_edges
        sampled = set(zip(sources.tolist(), targets.tolist()))
        expected = {
            (i, int(j)) for i in range(graph.n) for j in graph.out_neighbors(i)
        }
        assert sampled == expected

    def test_empty_graph(self, rng):
        sources, targets = sample_edges(CSRGraph.from_edges([]), 5, rng)
        assert len(sources) == 0 and len(targets) == 0
