"""Tests for degree correlations, cross-checked against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.correlations import (
    degree_assortativity,
    in_out_degree_correlation,
    mean_neighbor_degree,
)
from repro.graph.csr import CSRGraph


def random_edges(seed: int, n: int = 40, m: int = 120):
    rng = np.random.default_rng(seed)
    pairs = {(int(rng.integers(0, n)), int(rng.integers(0, n))) for _ in range(m)}
    return [(u, v) for u, v in pairs if u != v]


class TestInOutCorrelation:
    def test_perfectly_symmetric_graph(self):
        # All edges mutual (in-degree == out-degree at every node) with
        # varying degrees => correlation exactly 1.
        graph = CSRGraph.from_edges([(0, 1), (1, 0), (1, 2), (2, 1)])
        assert in_out_degree_correlation(graph) == pytest.approx(1.0)

    def test_star_is_anticorrelated(self):
        # Hub has out-degree 0 / in-degree high; leaves the opposite.
        edges = [(i, 0) for i in range(1, 8)]
        graph = CSRGraph.from_edges(edges)
        assert in_out_degree_correlation(graph) < -0.9

    def test_nan_when_degenerate(self):
        graph = CSRGraph.from_edges([(0, 1)])
        value = in_out_degree_correlation(graph)
        assert np.isnan(value) or -1.0 <= value <= 1.0


class TestAssortativity:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx(self, seed):
        edges = random_edges(seed)
        graph = CSRGraph.from_edges(edges)
        mapped = [(graph.compact_index(u), graph.compact_index(v)) for u, v in edges]
        nx_graph = nx.DiGraph(mapped)
        nx_graph.add_nodes_from(range(graph.n))
        ours = degree_assortativity(graph, "out-in")
        theirs = nx.degree_pearson_correlation_coefficient(
            nx_graph, x="out", y="in"
        )
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_all_modes_computable(self):
        graph = CSRGraph.from_edges(random_edges(9))
        for mode in ("out-in", "in-in", "out-out", "in-out"):
            value = degree_assortativity(graph, mode)
            assert np.isnan(value) or -1.0 <= value <= 1.0

    def test_invalid_mode(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2)])
        with pytest.raises(ValueError):
            degree_assortativity(graph, "weird-mode")

    def test_celebrity_graph_disassortative(self, study_results):
        """Follower graphs with celebrity hubs mix disassortatively."""
        value = degree_assortativity(study_results.graph, "out-in")
        assert value < 0.1


class TestMeanNeighborDegree:
    def test_hand_graph(self):
        # 0 -> {1, 2}; in-degrees: 1 has 1, 2 has 2 (from 0 and 1).
        graph = CSRGraph.from_edges([(0, 1), (0, 2), (1, 2)])
        knn = mean_neighbor_degree(graph)
        assert knn[0] == pytest.approx(1.5)
        assert knn[1] == pytest.approx(2.0)
        assert np.isnan(knn[2])

    def test_shape(self):
        graph = CSRGraph.from_edges(random_edges(2))
        assert len(mean_neighbor_degree(graph)) == graph.n
