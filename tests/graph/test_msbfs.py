"""Tests for the batched multi-source BFS kernel.

The load-bearing property is bit-identity with the sequential
:func:`repro.graph.paths.bfs_distances`: BFS levels are unique, so the
batched kernel must reproduce it exactly — not approximately — in both
traversal modes, for any batch width (including multi-word batches of
more than 64 sources).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.msbfs import (
    batch_eccentricities,
    batch_hop_counts,
    msbfs_distances,
)
from repro.graph.paths import bfs_distances, DIRECTED, UNDIRECTED


def edges_strategy(max_nodes: int = 24, max_edges: int = 70):
    node = st.integers(min_value=0, max_value=max_nodes - 1)
    return st.lists(
        st.tuples(node, node).filter(lambda e: e[0] != e[1]),
        min_size=1,
        max_size=max_edges,
    )


def sequential_distances(graph, sources, mode):
    return np.vstack(
        [bfs_distances(graph, int(s), mode=mode) for s in sources]
    ) if len(sources) else np.empty((0, graph.n), dtype=np.int32)


class TestDistances:
    @given(edges=edges_strategy(), mode=st.sampled_from([DIRECTED, UNDIRECTED]))
    @settings(max_examples=60, deadline=None)
    def test_matches_sequential_bfs(self, edges, mode):
        graph = CSRGraph.from_edges(edges)
        sources = np.arange(graph.n, dtype=np.int64)
        expected = sequential_distances(graph, sources, mode)
        np.testing.assert_array_equal(
            msbfs_distances(graph, sources, mode), expected
        )

    @given(edges=edges_strategy(), mode=st.sampled_from([DIRECTED, UNDIRECTED]))
    @settings(max_examples=25, deadline=None)
    def test_multi_word_batches(self, edges, mode):
        """More than 64 sources forces a second frontier word per node;
        duplicated sources must each get their own identical lane."""
        graph = CSRGraph.from_edges(edges)
        sources = np.resize(np.arange(graph.n, dtype=np.int64), 70)
        got = msbfs_distances(graph, sources, mode)
        np.testing.assert_array_equal(
            got, sequential_distances(graph, sources, mode)
        )

    def test_empty_sources(self):
        graph = CSRGraph.from_edges([(0, 1)])
        assert msbfs_distances(graph, []).shape == (0, 2)

    def test_invalid_mode(self):
        graph = CSRGraph.from_edges([(0, 1)])
        with pytest.raises(ValueError):
            msbfs_distances(graph, [0], mode="sideways")
        with pytest.raises(ValueError):
            msbfs_distances(graph, [], mode="sideways")


class TestHopCounts:
    @given(edges=edges_strategy(), mode=st.sampled_from([DIRECTED, UNDIRECTED]))
    @settings(max_examples=40, deadline=None)
    def test_matches_per_source_bincounts(self, edges, mode):
        graph = CSRGraph.from_edges(edges)
        sources = np.arange(graph.n, dtype=np.int64)
        counts = batch_hop_counts(graph, sources, mode)
        assert counts[0] == 0
        dist = sequential_distances(graph, sources, mode)
        reached = dist[dist > 0]
        expected = (
            np.bincount(reached, minlength=1)
            if reached.size
            else np.zeros(1, dtype=np.int64)
        )
        np.testing.assert_array_equal(counts, expected)

    def test_empty_sources(self):
        graph = CSRGraph.from_edges([(0, 1)])
        assert batch_hop_counts(graph, []).tolist() == [0]


class TestEccentricities:
    @given(edges=edges_strategy(), mode=st.sampled_from([DIRECTED, UNDIRECTED]))
    @settings(max_examples=40, deadline=None)
    def test_matches_sequential_bookkeeping(self, edges, mode):
        graph = CSRGraph.from_edges(edges)
        sources = np.arange(graph.n, dtype=np.int64)
        ecc, far = batch_eccentricities(graph, sources, mode)
        for j, source in enumerate(sources):
            dist = bfs_distances(graph, int(source), mode=mode)
            expected_ecc = int(dist.max(initial=0))
            assert ecc[j] == expected_ecc
            if expected_ecc == 0:
                assert far[j] == source
            else:
                # First farthest node = smallest compact index at max hop.
                assert far[j] == int(np.flatnonzero(dist == expected_ecc)[0])

    def test_empty_sources(self):
        graph = CSRGraph.from_edges([(0, 1)])
        ecc, far = batch_eccentricities(graph, [])
        assert len(ecc) == 0 and len(far) == 0
