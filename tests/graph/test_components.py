"""Tests for SCC/WCC decomposition, cross-checked against networkx."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.components import (
    scc_size_ccdf_input,
    strongly_connected_components,
    UnionFind,
    weakly_connected_components,
)


def random_edges(seed: int, n: int = 40, m: int = 80):
    rng = np.random.default_rng(seed)
    pairs = {(int(rng.integers(0, n)), int(rng.integers(0, n))) for _ in range(m)}
    return [(u, v) for u, v in pairs if u != v]


class TestSCCHandGraphs:
    def test_cycle_is_one_scc(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        decomposition = strongly_connected_components(graph)
        assert decomposition.n_components == 1
        assert decomposition.giant_size == 3

    def test_dag_is_all_singletons(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        decomposition = strongly_connected_components(graph)
        assert decomposition.n_components == 3
        assert decomposition.sizes.tolist() == [1, 1, 1]

    def test_two_cycles_bridged(self):
        edges = [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]
        decomposition = strongly_connected_components(CSRGraph.from_edges(edges))
        assert decomposition.n_components == 2
        assert decomposition.sizes.tolist() == [2, 2]

    def test_labels_sorted_by_size(self):
        edges = [(0, 1), (1, 2), (2, 0), (3, 4)]  # 3-cycle + path
        decomposition = strongly_connected_components(CSRGraph.from_edges(edges))
        assert decomposition.sizes[0] == 3
        assert set(decomposition.members(0).tolist()) == {0, 1, 2}

    def test_giant_fraction(self):
        edges = [(0, 1), (1, 0), (2, 3)]
        decomposition = strongly_connected_components(CSRGraph.from_edges(edges))
        assert decomposition.giant_fraction() == pytest.approx(0.5)

    def test_deep_path_no_recursion_error(self):
        # A 50k-node path would blow Python's recursion limit if the
        # implementation recursed.
        n = 50_000
        edges = [(i, i + 1) for i in range(n - 1)]
        decomposition = strongly_connected_components(CSRGraph.from_edges(edges))
        assert decomposition.n_components == n

    def test_large_cycle(self):
        n = 20_000
        edges = [(i, (i + 1) % n) for i in range(n)]
        decomposition = strongly_connected_components(CSRGraph.from_edges(edges))
        assert decomposition.n_components == 1
        assert decomposition.giant_size == n


class TestSCCAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx(self, seed):
        edges = random_edges(seed)
        if not edges:
            return
        graph = CSRGraph.from_edges(edges)
        ours = strongly_connected_components(graph)
        nx_graph = nx.DiGraph(
            [(graph.compact_index(u), graph.compact_index(v)) for u, v in edges]
        )
        nx_graph.add_nodes_from(range(graph.n))
        theirs = sorted(
            (len(c) for c in nx.strongly_connected_components(nx_graph)),
            reverse=True,
        )
        assert ours.sizes.tolist() == theirs
        # Same partition, not just same sizes.
        for component in nx.strongly_connected_components(nx_graph):
            labels = {int(ours.labels[node]) for node in component}
            assert len(labels) == 1


class TestWCC:
    def test_two_islands(self):
        graph = CSRGraph.from_edges([(0, 1), (2, 3)])
        decomposition = weakly_connected_components(graph)
        assert decomposition.n_components == 2

    def test_direction_ignored(self):
        graph = CSRGraph.from_edges([(0, 1), (2, 1)])
        assert weakly_connected_components(graph).n_components == 1

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx(self, seed):
        edges = random_edges(seed)
        if not edges:
            return
        graph = CSRGraph.from_edges(edges)
        ours = weakly_connected_components(graph)
        nx_graph = nx.DiGraph(
            [(graph.compact_index(u), graph.compact_index(v)) for u, v in edges]
        )
        nx_graph.add_nodes_from(range(graph.n))
        theirs = sorted(
            (len(c) for c in nx.weakly_connected_components(nx_graph)), reverse=True
        )
        assert ours.sizes.tolist() == theirs


class TestDecompositionInvariants:
    @given(st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=40, deadline=None)
    def test_partition_laws(self, seed):
        edges = random_edges(seed, n=25, m=60)
        if not edges:
            return
        graph = CSRGraph.from_edges(edges)
        for decomposition in (
            strongly_connected_components(graph),
            weakly_connected_components(graph),
        ):
            assert int(decomposition.sizes.sum()) == graph.n
            assert len(decomposition.labels) == graph.n
            assert decomposition.labels.min() >= 0
            assert decomposition.labels.max() == decomposition.n_components - 1
            assert np.all(np.diff(decomposition.sizes) <= 0)

    def test_scc_refines_wcc(self):
        edges = random_edges(7, n=30, m=70)
        graph = CSRGraph.from_edges(edges)
        scc = strongly_connected_components(graph)
        wcc = weakly_connected_components(graph)
        # Two nodes in one SCC must share a WCC.
        for component in range(scc.n_components):
            members = scc.members(component)
            assert len(set(wcc.labels[members].tolist())) == 1

    def test_ccdf_input_is_sizes(self):
        graph = CSRGraph.from_edges([(0, 1), (1, 0), (2, 3)])
        decomposition = strongly_connected_components(graph)
        assert scc_size_ccdf_input(decomposition).tolist() == [2, 1, 1]


class TestUnionFind:
    def test_union_and_find(self):
        uf = UnionFind(5)
        assert uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.find(0) == uf.find(1)
        assert uf.find(2) != uf.find(0)

    def test_size_tracking(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(0, 3)
        root = uf.find(0)
        assert uf.size[root] == 4
